package system

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/delivery"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

// addWorker registers the soloSpec performer.
func addWorker(t *testing.T, s *System) {
	t.Helper()
	if err := s.AddHuman("w1", "Worker One"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignRole("Worker", "w1"); err != nil {
		t.Fatal(err)
	}
}

// runSolo starts a Solo instance and drives Work to completion.
func runSolo(t *testing.T, s *System) string {
	t.Helper()
	pi, err := s.StartProcess("Solo", "w1")
	if err != nil {
		t.Fatal(err)
	}
	acts := s.Coordination().ActivitiesOf(pi.ID())
	if len(acts) != 1 {
		t.Fatalf("activities = %+v", acts)
	}
	if err := s.Coordination().Start(acts[0].ID, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Coordination().Complete(acts[0].ID, "w1"); err != nil {
		t.Fatal(err)
	}
	return pi.ID()
}

// TestSystemRecoveryRoundTrip: a system restarted on the same state
// directory recovers its specs and its enactment state, does not
// re-deliver notifications for replayed operations (replay-quiesce),
// and keeps working afterwards.
func TestSystemRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Clock: vclock.NewVirtual(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSpec(soloSpec); err != nil {
		t.Fatal(err)
	}
	addWorker(t, s)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	done := runSolo(t, s) // completed: one "done" notification
	mid, err := s.StartProcess("Solo", "w1")
	if err != nil {
		t.Fatal(err)
	}
	s.Drain()
	before := len(s.MustViewer("w1"))
	if before == 0 {
		t.Fatal("no notification delivered before restart")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Clock: vclock.NewVirtual(), StateDir: dir})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Replayed == 0 || rec.Failed != 0 {
		t.Fatalf("recovery stats = %+v", rec)
	}
	// The spec was recovered from <dir>/specs: reloading the identical
	// source is a no-op, and the schema answers StartProcess.
	if _, err := s2.LoadSpec(soloSpec); err != nil {
		t.Fatalf("reloading recovered spec: %v", err)
	}
	if st, ok := s2.Coordination().ProcessState(done); !ok || st != core.Completed {
		t.Fatalf("completed process recovered as %v, %v", st, ok)
	}
	if st, ok := s2.Coordination().ProcessState(mid.ID()); !ok || st != core.Running {
		t.Fatalf("mid-flight process recovered as %v, %v", st, ok)
	}
	// Replay-quiesce: replaying the completed run must not re-detect
	// and re-enqueue its notification.
	addWorker(t, s2)
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := len(s2.MustViewer("w1")); got != before {
		t.Fatalf("notifications after restart = %d, want %d (replay re-delivered)", got, before)
	}
	// The recovered system keeps working: finish the mid-flight run and
	// the new completion is detected and delivered exactly once more.
	acts := s2.Coordination().ActivitiesOf(mid.ID())
	if err := s2.Coordination().Start(acts[0].ID, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Coordination().Complete(acts[0].ID, "w1"); err != nil {
		t.Fatal(err)
	}
	s2.Drain()
	if got := len(s2.MustViewer("w1")); got != before+1 {
		t.Fatalf("notifications after post-recovery work = %d, want %d", got, before+1)
	}
}

// TestNewFailsOnCorruptSnapshot: an unreadable snapshot must fail
// construction loudly rather than silently starting empty.
func TestNewFailsOnCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "enact.snap"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{StateDir: dir}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// TestNewCleansTempDirOnFailure: when New creates its own temporary
// state directory and then fails, the directory must not leak.
func TestNewCleansTempDirOnFailure(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	orig := hookNewStore
	hookNewStore = func(string, delivery.StoreOptions) (*delivery.Store, error) {
		return nil, errors.New("injected store failure")
	}
	defer func() { hookNewStore = orig }()
	if _, err := New(Config{}); err == nil {
		t.Fatal("injected store failure not reported")
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("temporary state directory leaked: %v", entries)
	}
}

// TestCloseRunsClosersBeforeSeal: a closer may still drive journaled
// operations and store appends — Close seals the write-ahead log and
// the store only afterwards, and the closer's work survives a restart.
func TestCloseRunsClosersBeforeSeal(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Clock: vclock.NewVirtual(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSpec(soloSpec); err != nil {
		t.Fatal(err)
	}
	addWorker(t, s)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var closerErr error
	s.AddCloser(func() error {
		if _, closerErr = s.StartProcess("Solo", "w1"); closerErr != nil {
			return closerErr
		}
		_, _, closerErr = s.Store().EnqueueKeyed("w1", "close-key",
			delivery.Notification{Description: "flushed during close"})
		return closerErr
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if closerErr != nil {
		t.Fatalf("closer failed: %v", closerErr)
	}

	s2, err := New(Config{Clock: vclock.NewVirtual(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Coordination().Instances()); got != 1 {
		t.Fatalf("closer's journaled process not recovered: %d instances", got)
	}
	pend, err := s2.Store().Pending("w1")
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 || pend[0].Description != "flushed during close" {
		t.Fatalf("closer's notification not recovered: %+v", pend)
	}
}

// TestCloseIdempotent: double Close must not error, double-seal or
// double-remove.
func TestCloseIdempotent(t *testing.T) {
	s, err := New(Config{Clock: vclock.NewVirtual()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseDuringOperations: Close racing in-flight journaled
// operations must not corrupt state — the restart replays cleanly.
func TestCloseDuringOperations(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Clock: vclock.NewVirtual(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSpec(soloSpec); err != nil {
		t.Fatal(err)
	}
	addWorker(t, s)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				// Errors are expected once the WAL seals mid-run.
				if _, err := s.StartProcess("Solo", "w1"); err != nil {
					return
				}
			}
		}()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	s2, err := New(Config{Clock: vclock.NewVirtual(), StateDir: dir})
	if err != nil {
		t.Fatalf("recovery after racing close failed: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Failed != 0 {
		t.Fatalf("replay failures after racing close: %+v", rec)
	}
	for _, id := range s2.Coordination().Instances() {
		if st, ok := s2.Coordination().ProcessState(id); !ok || st != core.Running {
			t.Fatalf("process %s recovered as %v, %v", id, st, ok)
		}
	}
}

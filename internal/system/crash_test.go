package system

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/delivery"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

// crashSpec is the workload model for the crash-injection harness: a
// sequence with a guard-gated repeatable audit, a context to mutate,
// and an awareness description so detections and deliveries run during
// the workload.
const crashSpec = `
contextschema CrashCtx {
    int Tally
    string Note
}
process Crash {
    context cc CrashCtx
    activity Step role org Crew
    activity Audit role org Crew
    activity Wrap role org Crew
    seq Step -> Wrap
    guard Step -> Audit when cc.Tally >= 3
}
awareness CrashDone on Crash {
    root = activity Wrap to (Completed)
    deliver org Crew
    describe "wrapped"
}
`

var crashCrew = []string{"c1", "c2"}

// newCrashSystem opens (or recovers) a system on the harness state dir.
// stripes is the enactment engine's stripe count: rounds alternate it so
// journals written under the striped engine are recovered by the
// single-lock one and vice versa — stripe count is a locking choice, not
// a journal format, so every combination must agree.
func newCrashSystem(t *testing.T, dir string, stripes int) *System {
	t.Helper()
	s, err := New(Config{Clock: vclock.NewVirtual(), StateDir: dir, SnapshotEvery: 100, EnactStripes: stripes})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	if _, err := s.LoadSpec(crashSpec); err != nil {
		s.Close()
		t.Fatal(err)
	}
	for _, u := range crashCrew {
		if err := s.AddHuman(u, u); err != nil {
			s.Close()
			t.Fatal(err)
		}
		if err := s.AssignRole("Crew", u); err != nil {
			s.Close()
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		s.Close()
		t.Fatal(err)
	}
	return s
}

// TestCrashWorkloadChild is the harness child: it runs a randomized
// workload against CMI_CRASH_DIR until the parent SIGKILLs it at an
// arbitrary point. It is skipped unless spawned by TestCrashRecovery.
func TestCrashWorkloadChild(t *testing.T) {
	if os.Getenv("CMI_CRASH_CHILD") == "" {
		t.Skip("harness child; spawned by TestCrashRecovery")
	}
	dir := os.Getenv("CMI_CRASH_DIR")
	seed, _ := strconv.ParseInt(os.Getenv("CMI_CRASH_SEED"), 10, 64)
	stripes, _ := strconv.Atoi(os.Getenv("CMI_CRASH_STRIPES"))
	rng := rand.New(rand.NewSource(seed))
	s := newCrashSystem(t, dir, stripes)
	eng := s.Coordination()

	user := func() string { return crashCrew[rng.Intn(len(crashCrew))] }
	pick := func(st core.State) (string, bool) {
		ids := eng.Instances()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids {
			acts := eng.ActivitiesOf(id)
			rng.Shuffle(len(acts), func(i, j int) { acts[i], acts[j] = acts[j], acts[i] })
			for _, ai := range acts {
				if ai.State == st {
					return ai.ID, true
				}
			}
		}
		return "", false
	}
	running := func() (string, bool) {
		for _, id := range eng.Instances() {
			if st, _ := eng.ProcessState(id); st == core.Running {
				return id, true
			}
		}
		return "", false
	}

	// The loop is unbounded on purpose: the parent kills the process.
	// Individual operations may legally fail (double transitions,
	// guards not met, …); failed operations burn ids without journal
	// records, which recovery must absorb.
	for i := 0; i < 1<<30; i++ {
		switch rng.Intn(10) {
		case 0, 1:
			_, _ = s.StartProcess("Crash", user())
		case 2, 3:
			if id, ok := pick(core.Ready); ok {
				_ = eng.Start(id, user())
			}
		case 4, 5:
			if id, ok := pick(core.Running); ok {
				u := user()
				if err := eng.Complete(id, u); err == nil {
					// The keyed delivery the invariants check: the
					// notification may exist only if the completion is
					// recoverable, and lands exactly once.
					_, _, _ = s.Store().EnqueueKeyed(u, "done:"+id,
						delivery.Notification{Description: "done:" + id})
				}
			}
		case 6:
			if id, ok := running(); ok {
				_ = s.SetContextField(id, "cc", "Tally", rng.Intn(6))
			}
		case 7:
			if id, ok := running(); ok {
				av := core.ActivityVariable{
					Name:   fmt.Sprintf("Dyn%d", i),
					Schema: &core.BasicActivitySchema{Name: "DynWork", PerformerRole: core.OrgRole("Crew")},
				}
				_, _ = eng.AddActivity(id, av, rng.Intn(2) == 0, user())
			}
		case 8:
			if id, ok := running(); ok && rng.Intn(4) == 0 {
				_ = eng.TerminateProcess(id, user())
			}
		case 9:
			if id, ok := pick(core.Running); ok && rng.Intn(2) == 0 {
				u := user()
				if eng.Suspend(id, u) == nil {
					_ = eng.Resume(id, u)
				}
			}
		}
	}
}

// crashDump renders recovered state through the public API only, for
// determinism comparison across independent recoveries.
func crashDump(s *System) string {
	eng := s.Coordination()
	var b strings.Builder
	ids := eng.Instances()
	sort.Strings(ids)
	for _, id := range ids {
		pi, _ := eng.Instance(id)
		st, _ := eng.ProcessState(id)
		fmt.Fprintf(&b, "proc %s %s %s\n", id, pi.Schema().Name, st)
		acts := eng.ActivitiesOf(id)
		sort.Slice(acts, func(i, j int) bool { return acts[i].ID < acts[j].ID })
		for _, ai := range acts {
			fmt.Fprintf(&b, "  act %s %s %s %q\n", ai.ID, ai.Var, ai.State, ai.Assignee)
		}
		extActs, extDeps := eng.DynamicExtensions(id)
		for _, av := range extActs {
			fmt.Fprintf(&b, "  dynact %s %s\n", av.Name, av.Schema.SchemaName())
		}
		for _, d := range extDeps {
			fmt.Fprintf(&b, "  dyndep %d %v -> %s\n", int(d.Type), d.Sources, d.Target)
		}
		if ctxID, ok := eng.ContextID(id, "cc"); ok {
			tally, _ := s.Contexts().Field(ctxID, "Tally")
			fmt.Fprintf(&b, "  ctx %s Tally=%v\n", ctxID, tally)
		}
	}
	return b.String()
}

// verifyCrashInvariants recovers the state directory and checks the
// harness invariants, returning the dump for determinism comparison.
func verifyCrashInvariants(t *testing.T, dir string, round, stripes int) string {
	t.Helper()
	s := newCrashSystem(t, dir, stripes)
	defer s.Close()
	rec := s.Recovery()
	t.Logf("round %d: recovered snapshot=%v replayed=%d skipped=%d torn=%v lastSeq=%d in %v",
		round, rec.SnapshotLoaded, rec.Replayed, rec.Skipped, rec.TornTail, rec.LastSeq, rec.Elapsed)
	if rec.Failed != 0 {
		t.Errorf("round %d: %d journal records failed to replay", round, rec.Failed)
	}
	eng := s.Coordination()
	// Invariant 1: every recovered state is legal in its state schema.
	for _, id := range eng.Instances() {
		pi, _ := eng.Instance(id)
		st, _ := eng.ProcessState(id)
		if !pi.Schema().States().Has(st) {
			t.Errorf("round %d: process %s recovered in unknown state %v", round, id, st)
		}
		for _, ai := range eng.ActivitiesOf(id) {
			if ai.State == core.Uninitialized {
				t.Errorf("round %d: activity %s recovered Uninitialized", round, ai.ID)
			}
		}
	}
	// Invariant 2: the journals agree. A keyed "done" notification can
	// exist only if the completion it followed was journaled first —
	// so the activity must be recovered as Completed. And the key must
	// dedup across the restart: re-enqueueing is a no-op.
	for _, u := range crashCrew {
		pend, err := s.Store().Pending(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range pend {
			if !strings.HasPrefix(n.Description, "done:") {
				continue // awareness deliveries
			}
			actID := strings.TrimPrefix(n.Description, "done:")
			ai, ok := eng.Activity(actID)
			if !ok {
				t.Errorf("round %d: notification for unrecovered activity %s", round, actID)
				continue
			}
			if ai.State != core.Completed {
				t.Errorf("round %d: notified activity %s recovered %v, want Completed", round, actID, ai.State)
			}
			if _, dup, err := s.Store().EnqueueKeyed(u, n.Description, n); err != nil || !dup {
				t.Errorf("round %d: keyed notification %s not deduplicated (dup=%v, err=%v)", round, n.Description, dup, err)
			}
		}
	}
	return crashDump(s)
}

// TestCrashRecovery SIGKILLs a child running a randomized workload at
// an arbitrary journal position, then recovers and checks invariants:
// legal states only, journal agreement, keyed exactly-once delivery,
// and recovery determinism. Rounds compound on one state directory, so
// later rounds recover through snapshots plus prior recoveries.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv("CMI_CRASH_CHILD") != "" {
		t.Skip("harness child run")
	}
	if testing.Short() {
		t.Skip("crash harness skipped in -short")
	}
	dir := t.TempDir()
	rounds := 3
	if v := os.Getenv("CMI_CRASH_ROUNDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			rounds = n
		}
	}
	seed := time.Now().UnixNano()
	if v := os.Getenv("CMI_CRASH_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			seed = n
		}
	}
	t.Logf("crash harness seed %d (set CMI_CRASH_SEED to reproduce)", seed)
	rng := rand.New(rand.NewSource(seed))
	walPath := filepath.Join(dir, "enact.wal")
	walSize := func() int64 {
		fi, err := os.Stat(walPath)
		if err != nil {
			return 0
		}
		return fi.Size()
	}

	for round := 0; round < rounds; round++ {
		// Alternate the stripe count: even rounds run (and crash) the
		// 4-striped engine, odd rounds the single-lock one, over the same
		// compounding state directory.
		stripes := 4
		if round%2 == 1 {
			stripes = 1
		}
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrashWorkloadChild$", "-test.timeout=5m")
		cmd.Env = append(os.Environ(),
			"CMI_CRASH_CHILD=1",
			"CMI_CRASH_DIR="+dir,
			fmt.Sprintf("CMI_CRASH_STRIPES=%d", stripes),
			fmt.Sprintf("CMI_CRASH_SEED=%d", seed+int64(round)))
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		// Wait until the child demonstrably journals (compaction keeps
		// truncating the file, so absolute size is no progress measure),
		// then kill after a randomized delay — a crash point
		// uncorrelated with record boundaries.
		base := walSize()
		deadline := time.Now().Add(60 * time.Second)
		for walSize() == base {
			select {
			case err := <-exited:
				t.Fatalf("round %d: child exited before kill: %v\n%s", round, err, out.String())
			default:
			}
			if time.Now().After(deadline) {
				_ = cmd.Process.Kill()
				<-exited
				t.Fatalf("round %d: child never journaled\n%s", round, out.String())
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(time.Duration(rng.Intn(400)) * time.Millisecond)
		_ = cmd.Process.Kill()
		<-exited

		d1 := verifyCrashInvariants(t, dir, round, stripes)
		// Invariant 3: recovery is deterministic — a second independent
		// recovery of the same directory yields identical state. The
		// second recovery runs under the opposite stripe count, so the
		// parallel family-lane replay and the sequential replay must
		// reconstruct byte-identical state from the same journal.
		s2 := newCrashSystem(t, dir, 5-stripes)
		d2 := crashDump(s2)
		if d1 != d2 {
			s2.Close()
			t.Fatalf("round %d: recovery not deterministic:\n--- first ---\n%s--- second ---\n%s", round, d1, d2)
		}
		// Invariant 4: the recovered system still works end to end.
		pi, err := s2.StartProcess("Crash", "c1")
		if err != nil {
			s2.Close()
			t.Fatalf("round %d: post-recovery StartProcess: %v", round, err)
		}
		for _, ai := range s2.Coordination().ActivitiesOf(pi.ID()) {
			if ai.Var == "Step" {
				if err := s2.Coordination().Start(ai.ID, "c1"); err != nil {
					s2.Close()
					t.Fatal(err)
				}
				if err := s2.Coordination().Complete(ai.ID, "c1"); err != nil {
					s2.Close()
					t.Fatal(err)
				}
			}
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("round %d: close after post-recovery work: %v", round, err)
		}
	}
}

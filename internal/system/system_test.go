package system

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/mcc-cmi/cmi/internal/awareness"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

const soloSpec = `
process Solo {
    activity Work role org Worker
}
awareness Done on Solo {
    root = activity Work to (Completed)
    deliver org Worker
    describe "done"
}
`

func newTestSystem(t *testing.T) *System {
	t.Helper()
	s, err := New(Config{Clock: vclock.NewVirtual(), StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestLoadSpecAfterStartRejected(t *testing.T) {
	s := newTestSystem(t)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	before := s.Schemas().Names()
	_, err := s.LoadSpec(soloSpec)
	if !errors.Is(err, ErrStarted) {
		t.Fatalf("LoadSpec after Start = %v, want ErrStarted", err)
	}
	if got := s.Schemas().Names(); len(got) != len(before) {
		t.Fatalf("schemas changed by rejected load: %v", got)
	}
}

// TestLoadSpecRollbackOnDefineFailure forces the awareness definition
// step to fail after the spec's process schemas registered, and checks
// the registrations are rolled back rather than left behind.
func TestLoadSpecRollbackOnDefineFailure(t *testing.T) {
	s := newTestSystem(t)
	// Arm the awareness engine directly (bypassing System.Start, so the
	// facade still believes specs may load): Define now fails with
	// "cannot define while the engine runs".
	pre, err := s.LoadSpec(`
process Seed {
    activity Sow role org Worker
}
awareness Sown on Seed {
    root = activity Sow to (Completed)
    deliver org Worker
    describe "sown"
}
`)
	if err != nil || len(pre.Awareness) != 1 {
		t.Fatalf("seed spec: %v", err)
	}
	if err := s.Awareness().Start(); err != nil {
		t.Fatal(err)
	}
	before := s.Schemas().Names()
	if _, err := s.LoadSpec(soloSpec); err == nil {
		t.Fatal("load succeeded with a running awareness engine")
	}
	after := s.Schemas().Names()
	if strings.Join(after, ",") != strings.Join(before, ",") {
		t.Fatalf("partial registration left behind:\nbefore %v\nafter  %v", before, after)
	}
}

// TestLoadSpecRollbackOnRegisterConflict loads a spec whose second
// process conflicts with an existing schema name; the first process of
// the failing spec must not survive the failed load.
func TestLoadSpecRollbackOnRegisterConflict(t *testing.T) {
	s := newTestSystem(t)
	if _, err := s.LoadSpec(`
process Clash {
    activity A role org R
}
`); err != nil {
		t.Fatal(err)
	}
	before := s.Schemas().Names()
	_, err := s.LoadSpec(`
process Fresh {
    activity B role org R
}
process Clash {
    activity B role org R
}
`)
	if err == nil {
		t.Fatal("conflicting spec accepted")
	}
	after := s.Schemas().Names()
	if strings.Join(after, ",") != strings.Join(before, ",") {
		t.Fatalf("rollback incomplete:\nbefore %v\nafter  %v", before, after)
	}
}

// TestConcurrentLoadSpecStart races spec loading against Start (the
// federation postSpec race): under -race this must be clean, and a load
// that wins must leave a consistent system — its awareness schema armed
// by Start — while a load that loses must fail with ErrStarted and
// leave no schemas behind.
func TestConcurrentLoadSpecStart(t *testing.T) {
	for i := 0; i < 50; i++ {
		s, err := New(Config{Clock: vclock.NewVirtual(), StateDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var loadErr, startErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, loadErr = s.LoadSpec(soloSpec)
		}()
		go func() {
			defer wg.Done()
			startErr = s.Start()
		}()
		wg.Wait()
		if startErr != nil {
			t.Fatalf("start: %v", startErr)
		}
		switch {
		case loadErr == nil:
			// Load won the race: Start must have armed the engine.
			if !s.Awareness().Running() {
				t.Fatal("spec loaded before Start but engine not running")
			}
		case errors.Is(loadErr, ErrStarted):
			if got := s.Schemas().Names(); len(got) != 0 {
				t.Fatalf("losing load left schemas: %v", got)
			}
		default:
			t.Fatalf("load: %v", loadErr)
		}
		s.Close()
	}
}

// TestDefineAwarenessAfterStartRejected mirrors the LoadSpec guard: a
// post-Start define must fail with ErrStarted and must not flip the
// has-schemas flag — on a system with no awareness schemas the engine
// never started, so a flipped flag would wedge Health at unhealthy.
func TestDefineAwarenessAfterStartRejected(t *testing.T) {
	s := newTestSystem(t)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	err := s.DefineAwareness(&awareness.Schema{Name: "Late"})
	if !errors.Is(err, ErrStarted) {
		t.Fatalf("DefineAwareness after Start = %v, want ErrStarted", err)
	}
	if h := s.Health(); !h.Healthy {
		t.Fatalf("health after rejected define = %+v, want healthy", h)
	}
}

func TestHealthLifecycle(t *testing.T) {
	s := newTestSystem(t)
	if h := s.Health(); h.Healthy || h.Started {
		t.Fatalf("health before start = %+v", h)
	}
	if _, err := s.LoadSpec(soloSpec); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if !h.Healthy || !h.Started || !h.EngineRunning || !h.StoreOpen || h.Shards != 1 {
		t.Fatalf("health after start = %+v", h)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); h.Healthy || h.StoreOpen || h.EngineRunning {
		t.Fatalf("health after close = %+v", h)
	}
}

// TestHealthNoAwareness: a system with no awareness schemas never starts
// the engine, which must not count against its health.
func TestHealthNoAwareness(t *testing.T) {
	s := newTestSystem(t)
	if _, err := s.LoadSpec(`
process Plain {
    activity Only role org R
}
`); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if !h.Healthy || h.EngineRunning {
		t.Fatalf("health without awareness = %+v", h)
	}
}

// TestSystemMetricsCoverLayers drives a small process end to end and
// checks the per-system registry exposes every layer's series.
func TestSystemMetricsCoverLayers(t *testing.T) {
	s, err := New(Config{Clock: vclock.NewVirtual(), StateDir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.LoadSpec(soloSpec); err != nil {
		t.Fatal(err)
	}
	if err := s.AddHuman("w", "W"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignRole("Worker", "w"); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	pi, err := s.StartProcess("Solo", "w")
	if err != nil {
		t.Fatal(err)
	}
	wl := s.Worklist("w")
	if len(wl) != 1 {
		t.Fatalf("worklist = %v", wl)
	}
	if err := s.Coordination().Start(wl[0].ActivityID, "w"); err != nil {
		t.Fatal(err)
	}
	if err := s.Coordination().Complete(wl[0].ActivityID, "w"); err != nil {
		t.Fatal(err)
	}
	s.Awareness().Quiesce()
	_ = pi

	var b strings.Builder
	if _, err := s.Metrics().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, series := range []string{
		"cmi_cedmos_injected_total",
		"cmi_cedmos_detect_seconds",
		"cmi_cedmos_queue_depth",
		"cmi_awareness_detections_total",
		"cmi_awareness_dropped_total",
		"cmi_awareness_shards",
		"cmi_awareness_node_consumed_total",
		"cmi_delivery_enqueued_total",
		"cmi_delivery_journal_append_seconds",
		"cmi_delivery_queue_depth",
		"cmi_delivery_notifications_total",
		"cmi_enact_transitions_total",
		"cmi_enact_processes",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("metrics missing %s:\n%s", series, out)
		}
	}
	// The completed activity must show in the transition counter and the
	// detection must have been delivered.
	if !strings.Contains(out, `cmi_enact_transitions_total{state="Completed"}`) {
		t.Fatalf("no Completed transitions:\n%s", out)
	}
	pending := s.MustViewer("w")
	if len(pending) != 1 || pending[0].Schema != "Done" {
		t.Fatalf("pending = %v", pending)
	}
}

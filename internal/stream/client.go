// A minimal resuming SSE client for the streaming delivery plane. The
// protocol (docs/STREAMING.md) is deliberately implementable from the
// spec alone; this client is the in-repo reference consumer, used by
// the federation tests, the streaming benchmark's real-transport point,
// and the black-box chaos oracle's subscriber invariant checker.

package stream

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/mcc-cmi/cmi/internal/delivery"

	"encoding/json"
)

// ClientOptions configure Subscribe.
type ClientOptions struct {
	// HTTP is the client used for the long-lived GET; nil selects a
	// default client with no overall timeout (a stream is unbounded).
	HTTP *http.Client
	// Cursor is the resume point: the id of the last notification the
	// subscriber has already seen (0 to stream the whole pending queue).
	Cursor int64
	// ReconnectDelay is the pause between reconnect attempts after the
	// stream drops (default 100ms). The server's retry hint is not
	// honored — harnesses want deterministic reconnect cadence.
	ReconnectDelay time.Duration
}

// A Subscription is a live, auto-resuming subscription to one
// participant's notification stream. Events arrive on Events() in id
// order, exactly once, across any number of server-side disconnects,
// restarts, or network failures — the subscription reconnects with its
// cursor and the server replays what was missed.
type Subscription struct {
	events chan delivery.Notification
	cancel context.CancelFunc

	mu         sync.Mutex
	lastID     int64
	reconnects int
	err        error
	done       chan struct{}
}

// Subscribe opens a streaming subscription for participant against the
// federation server at baseURL. It retries and resumes until ctx is
// cancelled or Close is called; transport errors are absorbed into
// reconnects (the terminal error, if any, is reported by Err).
func Subscribe(ctx context.Context, baseURL, participant string, opts ClientOptions) *Subscription {
	if opts.HTTP == nil {
		opts.HTTP = &http.Client{}
	}
	if opts.ReconnectDelay <= 0 {
		opts.ReconnectDelay = 100 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(ctx)
	sub := &Subscription{
		events: make(chan delivery.Notification, 64),
		cancel: cancel,
		lastID: opts.Cursor,
		done:   make(chan struct{}),
	}
	go sub.run(ctx, baseURL, participant, opts)
	return sub
}

// Events delivers the stream in id order, exactly once. The channel is
// closed when the subscription ends (ctx cancelled or Close called).
func (s *Subscription) Events() <-chan delivery.Notification { return s.events }

// LastID returns the id of the last notification received — the cursor
// a future subscription would resume from.
func (s *Subscription) LastID() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastID
}

// Reconnects reports how many times the subscription re-established the
// stream after the initial connection.
func (s *Subscription) Reconnects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconnects
}

// Err returns the terminal error, if the subscription ended on one.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close ends the subscription and waits for the event channel to close.
func (s *Subscription) Close() {
	s.cancel()
	<-s.done
}

func (s *Subscription) run(ctx context.Context, baseURL, participant string, opts ClientOptions) {
	defer close(s.done)
	defer close(s.events)
	first := true
	for {
		if ctx.Err() != nil {
			return
		}
		if !first {
			select {
			case <-time.After(opts.ReconnectDelay):
			case <-ctx.Done():
				return
			}
			s.mu.Lock()
			s.reconnects++
			s.mu.Unlock()
		}
		err := s.stream(ctx, baseURL, participant, opts.HTTP)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			// Reconnect loop: errors are expected while the server is
			// down; only remember the latest for post-mortems.
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
		first = false
	}
}

// stream runs one connection: GET the stream resuming from the current
// cursor, parse SSE frames, and forward notification events. Returns
// when the connection drops or ctx is done.
func (s *Subscription) stream(ctx context.Context, baseURL, participant string, hc *http.Client) error {
	s.mu.Lock()
	cursor := s.lastID
	s.mu.Unlock()
	u := fmt.Sprintf("%s/api/stream/notifications?participant=%s&cursor=%d",
		strings.TrimRight(baseURL, "/"), url.QueryEscape(participant), cursor)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: subscribe: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event, data string
	var id int64
	flush := func() error {
		defer func() { event, data, id = "", "", 0 }()
		if event != "notification" || data == "" {
			return nil // hello, ping, or unknown control event
		}
		var n delivery.Notification
		if err := json.Unmarshal([]byte(data), &n); err != nil {
			return fmt.Errorf("stream: bad notification event: %w", err)
		}
		if id != 0 && n.ID == 0 {
			n.ID = id
		}
		s.mu.Lock()
		if n.ID <= s.lastID {
			// The server filters by cursor; this guards a replay overlap
			// if a proxy retried the request, preserving exactly-once.
			s.mu.Unlock()
			return nil
		}
		s.lastID = n.ID
		s.mu.Unlock()
		select {
		case s.events <- n:
		case <-ctx.Done():
			return ctx.Err()
		}
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, ":"):
			// comment (heartbeat)
		case strings.HasPrefix(line, "id:"):
			id, _ = strconv.ParseInt(strings.TrimSpace(line[3:]), 10, 64)
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			if data != "" {
				data += "\n"
			}
			data += strings.TrimSpace(line[5:])
		case strings.HasPrefix(line, "retry:"):
			// hint ignored; see ClientOptions.ReconnectDelay
		}
	}
	return sc.Err()
}

package stream

// Replay-fixture tests: each fixture under testdata/fixtures is a JSONL
// timeline of timed notification events with embedded control markers
// (disconnect, stall). The runner replays the timeline against a live
// store+hub while a subscriber goroutine consumes sessions the way a
// real SSE handler would — closing and resuming by cursor on
// disconnect markers, stalling on stall markers — and asserts the
// streaming plane's contract: every event is delivered exactly once,
// in id order, whatever the interleaving of journal replay, live
// broadcast, reconnects, and backpressure degradation.

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/mcc-cmi/cmi/internal/delivery"
)

// fixtureLine is one line of a replay fixture. The first line may be a
// config object (Config true); every other line is a timed event.
type fixtureLine struct {
	Config        bool `json:"config"`
	SessionBuffer int  `json:"session_buffer"`
	ReplayBatch   int  `json:"replay_batch"`
	// ExpectDrop asserts the timeline forces at least one
	// backpressure degradation to cursor replay.
	ExpectDrop bool `json:"expect_drop"`
	// MinReconnects asserts the subscriber resumed at least this often.
	MinReconnects int `json:"min_reconnects"`

	AtMS        int    `json:"at_ms"`
	Schema      string `json:"schema"`
	Description string `json:"description"`
	// Disconnect closes the session after this event is received; the
	// subscriber resumes with its cursor. Events later in the same
	// delivered batch are discarded, modeling a client that crashed
	// mid-frame — they must be replayed on reconnect.
	Disconnect bool `json:"disconnect"`
	// StallMS pauses the subscriber after this event, long enough for
	// the timeline to overflow a small session buffer.
	StallMS int `json:"stall_ms"`
}

func loadFixture(t *testing.T, name string) (cfg fixtureLine, events []fixtureLine) {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "fixtures", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line fixtureLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if line.Config {
			cfg = line
			continue
		}
		events = append(events, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatalf("%s: no events", name)
	}
	return cfg, events
}

func TestReplayFixtures(t *testing.T) {
	names, err := filepath.Glob(filepath.Join("testdata", "fixtures", "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no replay fixtures found")
	}
	for _, path := range names {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runReplayFixture(t, name)
		})
	}
}

func runReplayFixture(t *testing.T, name string) {
	cfg, events := loadFixture(t, name)
	store, hub := newHub(t, Options{
		SessionBuffer: cfg.SessionBuffer,
		ReplayBatch:   cfg.ReplayBatch,
	})
	byDesc := make(map[string]fixtureLine, len(events))
	for _, ev := range events {
		if _, dup := byDesc[ev.Description]; dup {
			t.Fatalf("fixture %s: duplicate description %q", name, ev.Description)
		}
		byDesc[ev.Description] = ev
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Subscriber: consumes sessions like an SSE handler, resuming by
	// cursor after every disconnect marker.
	var (
		mu         sync.Mutex
		received   []delivery.Notification
		reconnects int
	)
	gotAll := make(chan struct{})
	go func() {
		cursor := int64(0)
		for first := true; ; first = false {
			if !first {
				mu.Lock()
				reconnects++
				mu.Unlock()
			}
			sess, err := hub.Subscribe("ada", cursor)
			if err != nil {
				return // hub closed; test is over
			}
			disconnected := false
			for !disconnected {
				batch, err := sess.Next(ctx)
				if err != nil {
					sess.Close()
					return
				}
				for _, n := range batch {
					mu.Lock()
					received = append(received, n)
					done := len(received) == len(events)
					mu.Unlock()
					cursor = n.ID
					if done {
						close(gotAll)
						sess.Close()
						return
					}
					ev := byDesc[n.Description]
					if ev.StallMS > 0 {
						time.Sleep(time.Duration(ev.StallMS) * time.Millisecond)
					}
					if ev.Disconnect {
						// Crash mid-frame: drop the rest of the batch.
						sess.Close()
						disconnected = true
						break
					}
				}
			}
		}
	}()

	// Driver: replay the timeline against the store.
	start := time.Now()
	for _, ev := range events {
		if d := time.Duration(ev.AtMS)*time.Millisecond - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		if _, err := store.Enqueue("ada", delivery.Notification{
			Time: time.Now(), Schema: ev.Schema, Description: ev.Description,
		}); err != nil {
			t.Fatal(err)
		}
	}

	select {
	case <-gotAll:
	case <-ctx.Done():
		mu.Lock()
		n := len(received)
		mu.Unlock()
		t.Fatalf("timed out with %d of %d events delivered", n, len(events))
	}

	mu.Lock()
	defer mu.Unlock()
	want := make([]string, len(events))
	for i, ev := range events {
		want[i] = ev.Description
	}
	assertInOrder(t, received, want)
	if cfg.ExpectDrop && hub.dropped.Value() == 0 {
		t.Error("fixture expects a backpressure degradation; none occurred")
	}
	if reconnects < cfg.MinReconnects {
		t.Errorf("subscriber reconnected %d times, fixture requires >= %d", reconnects, cfg.MinReconnects)
	}
}

package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mcc-cmi/cmi/internal/delivery"
	"github.com/mcc-cmi/cmi/internal/obs"
)

// newHub builds a store+hub pair wired the way system.New wires them:
// the hub broadcast is the store's commit hook.
func newHub(t *testing.T, opts Options) (*delivery.Store, *Hub) {
	t.Helper()
	store, err := delivery.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	h := NewHub(store, opts)
	h.Instrument(obs.NewRegistry())
	store.OnCommit(h.Broadcast)
	t.Cleanup(h.Close)
	return store, h
}

func enqueue(t *testing.T, store *delivery.Store, participant, desc string) delivery.Notification {
	t.Helper()
	n, err := store.Enqueue(participant, delivery.Notification{
		Time: time.Now(), Schema: "S", Description: desc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// collect drains n notifications from the session with a deadline.
func collect(t *testing.T, s *Session, n int) []delivery.Notification {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var out []delivery.Notification
	for len(out) < n {
		batch, err := s.Next(ctx)
		if err != nil {
			t.Fatalf("Next after %d of %d: %v", len(out), n, err)
		}
		out = append(out, batch...)
	}
	if len(out) > n {
		t.Fatalf("got %d notifications, want %d", len(out), n)
	}
	return out
}

func assertInOrder(t *testing.T, ns []delivery.Notification, wantDescs []string) {
	t.Helper()
	if len(ns) != len(wantDescs) {
		t.Fatalf("got %d notifications, want %d", len(ns), len(wantDescs))
	}
	last := int64(0)
	for i, n := range ns {
		if n.ID <= last {
			t.Fatalf("ids not strictly ascending: %d after %d", n.ID, last)
		}
		last = n.ID
		if n.Description != wantDescs[i] {
			t.Fatalf("notification %d: got %q, want %q", i, n.Description, wantDescs[i])
		}
	}
}

func TestSessionReplayThenLive(t *testing.T) {
	store, h := newHub(t, Options{})
	// Backlog before the session exists.
	enqueue(t, store, "ada", "a")
	enqueue(t, store, "ada", "b")
	s, err := h.Subscribe("ada", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := collect(t, s, 2)
	// Live events after the session caught up.
	enqueue(t, store, "ada", "c")
	enqueue(t, store, "ada", "d")
	got = append(got, collect(t, s, 2)...)
	assertInOrder(t, got, []string{"a", "b", "c", "d"})
}

func TestSessionResumeFromCursor(t *testing.T) {
	store, h := newHub(t, Options{})
	var ids []int64
	for i := 0; i < 5; i++ {
		ids = append(ids, enqueue(t, store, "ada", fmt.Sprintf("n%d", i)).ID)
	}
	// Resume after the 3rd: only n3 and n4 may arrive.
	s, err := h.Subscribe("ada", ids[2])
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	assertInOrder(t, collect(t, s, 2), []string{"n3", "n4"})
	if got := s.Cursor(); got != ids[4] {
		t.Fatalf("cursor = %d, want %d", got, ids[4])
	}
}

func TestSessionSkipsAckedOnReplay(t *testing.T) {
	store, h := newHub(t, Options{})
	n0 := enqueue(t, store, "ada", "seen")
	enqueue(t, store, "ada", "pending")
	if err := store.Ack("ada", n0.ID); err != nil {
		t.Fatal(err)
	}
	s, err := h.Subscribe("ada", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	assertInOrder(t, collect(t, s, 1), []string{"pending"})
}

// TestSlowSessionDegradesToReplay drives more live traffic than the
// session buffer holds while the client is not reading: the session
// must bound its memory by dropping to cursor replay, then still
// deliver everything exactly once and in order.
func TestSlowSessionDegradesToReplay(t *testing.T) {
	store, h := newHub(t, Options{SessionBuffer: 4})
	s, err := h.Subscribe("ada", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Drain the empty initial replay so the session is live; after that
	// the client stops reading and the buffer (4) must overflow.
	drainCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	s.Next(drainCtx)
	cancel()
	const total = 64
	want := make([]string, total)
	for i := range want {
		want[i] = fmt.Sprintf("n%d", i)
		enqueue(t, store, "ada", want[i])
	}
	if got := h.dropped.Value(); got == 0 {
		t.Fatal("expected at least one dropped-to-replay degradation")
	}
	assertInOrder(t, collect(t, s, total), want)
}

// TestConcurrentBroadcastExactlyOnce races live enqueues against a
// consuming session from the first event on, crossing the replay→live
// transition repeatedly; the session must deliver every notification
// exactly once, in order.
func TestConcurrentBroadcastExactlyOnce(t *testing.T) {
	store, h := newHub(t, Options{SessionBuffer: 8})
	s, err := h.Subscribe("ada", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const total = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			enqueue(t, store, "ada", fmt.Sprintf("n%d", i))
		}
	}()
	want := make([]string, total)
	for i := range want {
		want[i] = fmt.Sprintf("n%d", i)
	}
	got := collect(t, s, total)
	wg.Wait()
	assertInOrder(t, got, want)
}

func TestSessionCloseUnblocksNext(t *testing.T) {
	_, h := newHub(t, Options{})
	s, err := h.Subscribe("ada", 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Next(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Next returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on Close")
	}
	if n := h.SessionCount(); n != 0 {
		t.Fatalf("SessionCount = %d after Close, want 0", n)
	}
}

func TestHubCloseEndsSessionsAndRefusesNew(t *testing.T) {
	_, h := newHub(t, Options{})
	s, err := h.Subscribe("ada", 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if _, err := s.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next after hub Close = %v, want ErrClosed", err)
	}
	if _, err := h.Subscribe("bob", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after Close = %v, want ErrClosed", err)
	}
}

func TestFrameWriterSSEFormat(t *testing.T) {
	_, h := newHub(t, Options{})
	var sb strings.Builder
	fw := h.NewFrameWriter(&sb)
	if err := fw.WriteHello("ada", 7, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteEvents([]delivery.Notification{
		{ID: 8, Schema: "S", Description: "x"},
		{ID: 9, Schema: "S", Description: "y"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := fw.WritePing(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"retry: 2000\n",
		"event: hello\ndata: {\"participant\":\"ada\",\"cursor\":7}\n\n",
		"id: 8\nevent: notification\ndata: ",
		"id: 9\nevent: notification\ndata: ",
		": ping\n\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SSE output missing %q:\n%s", want, out)
		}
	}
	// Every event must be terminated by a blank line.
	if !strings.HasSuffix(out, "\n\n") {
		t.Fatalf("SSE output not frame-terminated:\n%s", out)
	}
}

// TestBroadcastBatchesOneWritePerCommitGroup asserts the batched
// fan-out contract: a fanout batch that lands in one commit group
// reaches the session as one batch, which the frame writer turns into
// one Write.
func TestBroadcastBatchesOneWritePerCommitGroup(t *testing.T) {
	store, h := newHub(t, Options{})
	s, err := h.Subscribe("ada", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Drain the (empty) replay so the session is live.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	s.Next(ctx)
	cancel()
	items := []delivery.FanoutItem{
		{Users: []string{"ada"}, N: delivery.Notification{Schema: "S", Description: "a"}},
		{Users: []string{"ada"}, N: delivery.Notification{Schema: "S", Description: "b"}},
		{Users: []string{"ada"}, N: delivery.Notification{Schema: "S", Description: "c"}},
	}
	if _, _, err := store.EnqueueFanoutBatch(items); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	batch, err := s.Next(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("one commit group delivered as %d batches' worth (%d notifications), want one batch of 3", 1, len(batch))
	}
	countingW := &writeCounter{}
	if err := h.NewFrameWriter(countingW).WriteEvents(batch); err != nil {
		t.Fatal(err)
	}
	if countingW.writes != 1 {
		t.Fatalf("frame writer used %d writes for one batch, want 1", countingW.writes)
	}
}

type writeCounter struct{ writes int }

func (w *writeCounter) Write(p []byte) (int, error) { w.writes++; return len(p), nil }

// Package stream implements the CMI streaming delivery plane: long-lived
// push sessions that ride the delivery store's group-commit journal, so
// the paper's "Client for Participants" receives awareness information
// as it is detected instead of polling the viewer API.
//
// The design has three load-bearing properties:
//
//   - Resumable cursors. Notification ids are journal-ordered per
//     participant, so a session's position is one int64 — the id of the
//     last notification it delivered. A reconnecting client presents its
//     cursor and the session replays everything after it from the
//     durable queue (delivery.Store.PendingAfter) before going live.
//     Delivery is therefore exactly-once and in-order across any number
//     of disconnects.
//
//   - Group-commit fan-out. The hub subscribes to the store's commit
//     hook (delivery.Store.OnCommit): one journal commit group arrives
//     as one Broadcast call carrying the whole batch, and a live session
//     turns it into one frame write — N writers coalescing in a commit
//     group cost each session one write, not N.
//
//   - Bounded memory under backpressure. Each session's live buffer is
//     bounded. A slow client that falls behind does not block the commit
//     path and does not grow the buffer: the session drops its buffer,
//     flips to replay mode, and catches up from the journal by cursor.
//     The commit path never waits on a client, and a session's memory is
//     O(buffer bound) regardless of how far behind its client is.
//
// The wire protocol (Server-Sent Events over the federation server's
// GET /api/stream/notifications) is specified in docs/STREAMING.md.
package stream

import (
	"context"
	"errors"
	"sync"

	"github.com/mcc-cmi/cmi/internal/delivery"
	"github.com/mcc-cmi/cmi/internal/obs"
)

// ErrClosed is returned by Session.Next after the session (or its hub)
// has been closed.
var ErrClosed = errors.New("stream: session closed")

// DefaultSessionBuffer is the default bound on a session's in-memory
// live buffer, in notifications. Past it the session degrades to cursor
// replay from the journal (see Options.SessionBuffer).
const DefaultSessionBuffer = 256

// DefaultReplayBatch is the default number of notifications fetched per
// cursor-replay read.
const DefaultReplayBatch = 512

// Options configure a Hub.
type Options struct {
	// SessionBuffer bounds each session's in-memory live buffer, in
	// notifications. When a broadcast would push a session past the
	// bound, the session drops the buffer and degrades to cursor replay
	// from the journal instead of growing or blocking the commit path.
	// 0 selects DefaultSessionBuffer.
	SessionBuffer int
	// ReplayBatch bounds the notifications fetched per cursor-replay
	// read, so one resuming session with a deep backlog cannot hold a
	// queue lock for an unbounded scan. 0 selects DefaultReplayBatch.
	ReplayBatch int
}

// A Hub owns every streaming session of one CMI system. It receives
// committed notification batches from the delivery store's commit hook
// and fans them out to the live sessions of the affected participant.
// It is safe for concurrent use.
type Hub struct {
	store       *delivery.Store
	sessionBuf  int
	replayBatch int

	// metrics are nil-safe (recording on nil obs instruments is a no-op).
	sessions   *obs.Gauge
	dropped    *obs.Counter
	frameWrite *obs.Histogram
	events     *obs.Counter

	mu     sync.Mutex
	byPart map[string]map[*Session]struct{}
	closed bool
}

// NewHub returns a hub reading cursor replays from store. Wire it to
// the store with store.OnCommit(h.Broadcast) to make sessions live.
func NewHub(store *delivery.Store, opts Options) *Hub {
	if opts.SessionBuffer <= 0 {
		opts.SessionBuffer = DefaultSessionBuffer
	}
	if opts.ReplayBatch <= 0 {
		opts.ReplayBatch = DefaultReplayBatch
	}
	return &Hub{
		store:       store,
		sessionBuf:  opts.SessionBuffer,
		replayBatch: opts.ReplayBatch,
		byPart:      make(map[string]map[*Session]struct{}),
	}
}

// Instrument registers the hub's metric series: the live session gauge,
// the backpressure degradations counter, frames sent, and frame-write
// latency. A nil registry is a no-op.
func (h *Hub) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	h.sessions = reg.Gauge("cmi_stream_sessions",
		"Streaming delivery sessions currently subscribed.")
	h.dropped = reg.Counter("cmi_stream_dropped_to_replay_total",
		"Times a slow session's live buffer overflowed and the session degraded to cursor replay from the journal.")
	h.frameWrite = reg.Histogram("cmi_stream_frame_write_seconds",
		"Latency of writing one batched SSE frame to a session's transport.", nil)
	h.events = reg.Counter("cmi_stream_events_total",
		"Notifications written to streaming sessions (replayed and live).")
}

// Broadcast offers one committed notification batch to the live
// sessions of a participant. It is the store's commit hook: invoked on
// the journal commit path, once per commit group, with the group's
// notifications in id order. It never blocks — a session whose buffer
// cannot take the batch is flipped to cursor replay instead.
func (h *Hub) Broadcast(participant string, ns []delivery.Notification) {
	if len(ns) == 0 {
		return
	}
	h.mu.Lock()
	set := h.byPart[participant]
	if len(set) == 0 {
		h.mu.Unlock()
		return
	}
	// Snapshot under the hub lock; session offers take per-session locks
	// only, so a stuck session cannot delay hub subscribe/close.
	sessions := make([]*Session, 0, len(set))
	for s := range set {
		sessions = append(sessions, s)
	}
	h.mu.Unlock()
	for _, s := range sessions {
		s.offer(ns)
	}
}

// Subscribe opens a streaming session for a participant, resuming after
// cursor (0 streams everything pending). The session first replays the
// durable queue past the cursor, then follows the live broadcast.
// Close the session when the client disconnects.
func (h *Hub) Subscribe(participant string, cursor int64) (*Session, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	s := &Session{
		hub:         h,
		participant: participant,
		cursor:      cursor,
		replay:      true, // deliver the journal backlog before going live
		notify:      make(chan struct{}, 1),
		buf:         make([]delivery.Notification, 0, 16),
	}
	set := h.byPart[participant]
	if set == nil {
		set = make(map[*Session]struct{})
		h.byPart[participant] = set
	}
	set[s] = struct{}{}
	h.sessions.Inc()
	return s, nil
}

// Sessions returns a snapshot of every live session, for inspection
// and administrative shedding (closing a session forces its client to
// reconnect and resume by cursor).
func (h *Hub) Sessions() []*Session {
	h.mu.Lock()
	defer h.mu.Unlock()
	var all []*Session
	for _, set := range h.byPart {
		for s := range set {
			all = append(all, s)
		}
	}
	return all
}

// SessionCount reports the number of live sessions.
func (h *Hub) SessionCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, set := range h.byPart {
		n += len(set)
	}
	return n
}

// Close terminates every session (their Next calls return ErrClosed)
// and refuses new subscriptions. It is idempotent, and safe to call
// before the delivery store closes — sessions stop reading first.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	var all []*Session
	for _, set := range h.byPart {
		for s := range set {
			all = append(all, s)
		}
	}
	h.byPart = make(map[string]map[*Session]struct{})
	h.mu.Unlock()
	for _, s := range all {
		s.close(false)
	}
}

// unsubscribe removes a closed session from the hub's index.
func (h *Hub) unsubscribe(s *Session) {
	h.mu.Lock()
	if set := h.byPart[s.participant]; set != nil {
		if _, ok := set[s]; ok {
			delete(set, s)
			if len(set) == 0 {
				delete(h.byPart, s.participant)
			}
			h.sessions.Dec()
		}
	}
	h.mu.Unlock()
}

// A Session is one participant's resumable push stream. One goroutine
// (the transport handler) consumes it via Next; the hub's Broadcast
// feeds it concurrently. The session guarantees exactly-once, in-order
// delivery relative to its cursor: every pending notification with an
// id above the cursor is returned exactly once, in id order, however
// the session interleaves journal replay and live broadcast.
type Session struct {
	hub         *Hub
	participant string

	mu     sync.Mutex
	cursor int64                   // id of the last notification returned by Next
	buf    []delivery.Notification // live buffer, bounded by hub.sessionBuf
	replay bool                    // journal replay owed before trusting buf
	closed bool
	notify chan struct{} // 1-buffered wake-up for Next
}

// Participant returns the participant the session streams for.
func (s *Session) Participant() string { return s.participant }

// Cursor returns the id of the last notification returned by Next —
// the value a client would present to resume after this session.
func (s *Session) Cursor() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

// offer appends a broadcast batch to the live buffer, or — if the
// buffer cannot take it — drops the buffer and flips the session to
// cursor replay. Never blocks; called from the journal commit path.
func (s *Session) offer(ns []delivery.Notification) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	switch {
	case s.replay:
		// Already catching up from the journal; the replay read will
		// observe these notifications (they are committed by now).
	case len(s.buf)+len(ns) > s.hub.sessionBuf:
		// Slow client: bound memory by degrading to journal replay
		// rather than buffering without bound or blocking the commit.
		s.buf = s.buf[:0]
		s.replay = true
		s.hub.dropped.Inc()
	default:
		s.buf = append(s.buf, ns...)
	}
	s.mu.Unlock()
	s.wake()
}

// wake nudges a Next call blocked on the notify channel.
func (s *Session) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next blocks until notifications after the session's cursor are
// available and returns the next in-order batch, advancing the cursor
// past it. A batch is either one journal replay read (bounded by the
// hub's replay batch size) or the session's drained live buffer — in
// both cases the caller should write it as a single frame. Next returns
// ErrClosed after Close, or the context's error if it is done first.
// It must be called from a single goroutine.
func (s *Session) Next(ctx context.Context) ([]delivery.Notification, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		if s.replay {
			// Leave replay mode BEFORE reading the journal: broadcasts
			// arriving during the read buffer as live and are deduped
			// against the cursor, so nothing falls between replay and
			// live. If the read fills a whole batch there may be more
			// backlog — stay in replay until a read comes back short.
			s.replay = false
			cursor := s.cursor
			s.mu.Unlock()
			ns, err := s.hub.store.PendingAfter(s.participant, cursor, s.hub.replayBatch)
			if err != nil {
				return nil, err
			}
			if len(ns) > 0 {
				s.mu.Lock()
				if s.closed {
					s.mu.Unlock()
					return nil, ErrClosed
				}
				if len(ns) == s.hub.replayBatch {
					s.replay = true // deep backlog: more to fetch
				}
				s.cursor = ns[len(ns)-1].ID
				s.mu.Unlock()
				return ns, nil
			}
			continue // caught up; fall through to the live buffer
		}
		if len(s.buf) > 0 {
			// Drain the live buffer, skipping anything at or below the
			// cursor (already delivered by a replay read that raced the
			// broadcast). Ids are ascending, so one pass suffices.
			batch := make([]delivery.Notification, 0, len(s.buf))
			for _, n := range s.buf {
				if n.ID > s.cursor {
					batch = append(batch, n)
				}
			}
			s.buf = s.buf[:0]
			if len(batch) > 0 {
				s.cursor = batch[len(batch)-1].ID
				s.mu.Unlock()
				return batch, nil
			}
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		select {
		case <-s.notify:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Close ends the session: a blocked Next returns ErrClosed and the hub
// forgets the session. Idempotent.
func (s *Session) Close() { s.close(true) }

func (s *Session) close(unsubscribe bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.buf = nil
	s.mu.Unlock()
	s.wake()
	if unsubscribe {
		s.hub.unsubscribe(s)
	}
}

// SSE wire encoding for streaming sessions — the server side of the
// protocol specified in docs/STREAMING.md. Kept transport-only: the
// ordering/resume logic lives in Session, so a future WebSocket or
// binary transport reuses it unchanged.

package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/mcc-cmi/cmi/internal/delivery"
)

// A FrameWriter encodes notification batches as Server-Sent Events and
// writes each batch to the transport with a single Write call — one
// journal commit group, one syscall per session. It is not safe for
// concurrent use; each session's transport goroutine owns one.
type FrameWriter struct {
	w   io.Writer
	buf []byte
	hub *Hub // metric source; nil-safe
}

// NewFrameWriter returns a frame writer for one session's transport,
// observing frame-write latency and event counts on the hub's metrics.
func (h *Hub) NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, hub: h, buf: make([]byte, 0, 1024)}
}

// WriteHello writes the session-opening control event: the participant,
// the cursor the session resumed from, and the client retry hint.
func (fw *FrameWriter) WriteHello(participant string, cursor int64, retry time.Duration) error {
	fw.buf = fw.buf[:0]
	if retry > 0 {
		fw.buf = append(fw.buf, "retry: "...)
		fw.buf = strconv.AppendInt(fw.buf, retry.Milliseconds(), 10)
		fw.buf = append(fw.buf, '\n')
	}
	fw.buf = append(fw.buf, "event: hello\ndata: "...)
	hello, err := json.Marshal(struct {
		Participant string `json:"participant"`
		Cursor      int64  `json:"cursor"`
	}{participant, cursor})
	if err != nil {
		return fmt.Errorf("stream: encode hello: %w", err)
	}
	fw.buf = append(fw.buf, hello...)
	fw.buf = append(fw.buf, '\n', '\n')
	return fw.flush()
}

// WriteEvents writes one batch of notifications as consecutive
// `notification` events — each carrying its journal id in the SSE `id`
// field, so a standard EventSource client resumes via Last-Event-ID —
// flushed to the transport in a single Write.
func (fw *FrameWriter) WriteEvents(ns []delivery.Notification) error {
	if len(ns) == 0 {
		return nil
	}
	fw.buf = fw.buf[:0]
	for i := range ns {
		fw.buf = append(fw.buf, "id: "...)
		fw.buf = strconv.AppendInt(fw.buf, ns[i].ID, 10)
		fw.buf = append(fw.buf, "\nevent: notification\ndata: "...)
		body, err := json.Marshal(&ns[i])
		if err != nil {
			return fmt.Errorf("stream: encode notification %d: %w", ns[i].ID, err)
		}
		fw.buf = append(fw.buf, body...)
		fw.buf = append(fw.buf, '\n', '\n')
	}
	if err := fw.flush(); err != nil {
		return err
	}
	if fw.hub != nil {
		fw.hub.events.Add(uint64(len(ns)))
	}
	return nil
}

// WritePing writes a heartbeat comment line, keeping intermediaries and
// dead-connection detection alive during quiet periods.
func (fw *FrameWriter) WritePing() error {
	fw.buf = append(fw.buf[:0], ": ping\n\n"...)
	return fw.flush()
}

// flush writes the assembled frame in one call, observing write latency.
func (fw *FrameWriter) flush() error {
	var t0 time.Time
	observe := fw.hub != nil && fw.hub.frameWrite != nil
	if observe {
		t0 = time.Now()
	}
	_, err := fw.w.Write(fw.buf)
	if observe {
		fw.hub.frameWrite.Observe(time.Since(t0))
	}
	if err != nil {
		return fmt.Errorf("stream: frame write: %w", err)
	}
	return nil
}

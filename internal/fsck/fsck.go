// Package fsck is the offline state-directory verifier behind
// `cmictl fsck`: it walks every durable artifact a CMI domain keeps —
// persisted ADL specs, the enactment snapshot and WAL, the
// per-participant delivery journals, the federation spool — and
// re-verifies each one the way its owning engine would load it: frame
// CRCs, record decodes, sequence/id high-water monotonicity, torn-tail
// versus mid-journal damage classification.
//
// fsck never repairs silently. With Options.Quarantine it moves the
// unreadable suffix of a damaged journal to a `.quarantine` sibling and
// truncates the journal at the damage point, so the next boot loads the
// intact prefix while the evidence survives for inspection; snapshots
// and specs are never rewritten (delete and re-snapshot/re-load
// instead). Stray `*.tmp` files from interrupted atomic replacements
// are reported and, under Quarantine, removed.
package fsck

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/mcc-cmi/cmi/internal/adl"
	"github.com/mcc-cmi/cmi/internal/delivery"
	"github.com/mcc-cmi/cmi/internal/enact"
	"github.com/mcc-cmi/cmi/internal/federation"
	"github.com/mcc-cmi/cmi/internal/fs"
)

// Options configures a Check run.
type Options struct {
	// Quarantine repairs damaged journals: the suffix from the damage
	// point on is saved to `<file>.quarantine` and the journal is
	// truncated (atomically) to its verified prefix. Stray *.tmp files
	// are removed. Snapshots and specs are never touched.
	Quarantine bool
	// FS is the filesystem to verify through; nil means the real one.
	FS fs.FS
}

// Kinds of durable artifact fsck understands.
const (
	KindSpec     = "spec"
	KindSnapshot = "snapshot"
	KindWAL      = "wal"
	KindJournal  = "delivery-journal"
	KindSpool    = "spool"
	KindTmp      = "stray-tmp"
)

// A FileReport is the verdict on one file in the state directory.
type FileReport struct {
	// Path is relative to the state directory.
	Path string
	// Kind classifies the artifact (KindSpec, KindWAL, ...).
	Kind string
	// Damaged reports the file needs attention: mid-journal corruption,
	// undecodable committed records, sequence regressions, an unreadable
	// snapshot or spec. A torn tail alone is NOT damage — it is the
	// artifact a tolerated crash leaves behind.
	Damaged bool
	// Torn reports the scan stopped before end of file.
	Torn bool
	// Corrupt reports mid-journal (non-tail) damage: intact frames
	// exist after the bad record, so this is bit-rot inside committed
	// history, not a crashed append.
	Corrupt bool
	// TornOffset is the byte offset the scan stopped at (meaningful
	// when Torn is set) — the truncation point Quarantine uses.
	TornOffset int64
	// Records counts the verified records before any damage point.
	Records int
	// Detail is a one-line human summary of what was found.
	Detail string
	// Quarantined reports the file was repaired: suffix saved to
	// `<Path>.quarantine`, journal truncated to the verified prefix
	// (or, for stray tmp files, removed).
	Quarantined bool
}

// A Report is the result of one Check run over a state directory.
type Report struct {
	// StateDir is the directory that was checked.
	StateDir string
	// Files holds one report per artifact found, sorted by path.
	Files []FileReport
	// Damaged counts the files whose FileReport.Damaged is set.
	Damaged int
	// WALSeq and SnapshotSeq are the sequence high-waters the WAL and
	// snapshot imply (0 when absent) — the cross-check `cmictl fsck`
	// prints so an operator can see which artifact is ahead.
	WALSeq      int64
	SnapshotSeq int64
}

// Clean reports whether the state directory needs no attention at all:
// no damage and no stray tmp files.
func (r *Report) Clean() bool {
	if r.Damaged > 0 {
		return false
	}
	for _, f := range r.Files {
		if f.Kind == KindTmp && !f.Quarantined {
			return false
		}
	}
	return true
}

// Check verifies the state directory at dir and returns the report.
// The directory must exist; an empty or freshly created one checks
// clean. Check itself only reads; repairs happen only under
// Options.Quarantine and are recorded per file.
func Check(dir string, opts Options) (*Report, error) {
	fsys := fs.Or(opts.FS)
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("fsck: %w", err)
	}
	r := &Report{StateDir: dir}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fsck: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			r.add(strayTmp(fsys, dir, name, opts.Quarantine))
		case name == "enact.wal":
			r.add(checkWAL(fsys, dir, name, opts.Quarantine, r))
		case name == "enact.snap":
			r.add(checkSnapshot(fsys, dir, name, r))
		case name == "spool.journal" || name == "spool.jsonl":
			r.add(checkSpool(fsys, dir, name, opts.Quarantine))
		case strings.HasSuffix(name, ".jsonl"):
			r.add(checkJournal(fsys, dir, name, opts.Quarantine))
		}
	}

	specDir := filepath.Join(dir, "specs")
	if specs, err := os.ReadDir(specDir); err == nil {
		for _, e := range specs {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			rel := filepath.Join("specs", name)
			if strings.HasSuffix(name, ".tmp") {
				r.add(strayTmp(fsys, dir, rel, opts.Quarantine))
				continue
			}
			if strings.HasSuffix(name, ".adl") {
				r.add(checkSpec(fsys, dir, rel))
			}
		}
	}

	sort.Slice(r.Files, func(i, j int) bool { return r.Files[i].Path < r.Files[j].Path })
	for _, f := range r.Files {
		if f.Damaged {
			r.Damaged++
		}
	}
	return r, nil
}

func (r *Report) add(f FileReport) { r.Files = append(r.Files, f) }

func strayTmp(fsys fs.FS, dir, rel string, quarantine bool) FileReport {
	f := FileReport{Path: rel, Kind: KindTmp,
		Detail: "leftover from an interrupted atomic replacement; safe to remove"}
	if quarantine {
		if err := fsys.Remove(filepath.Join(dir, rel)); err == nil {
			f.Quarantined = true
			f.Detail = "leftover from an interrupted atomic replacement; removed"
		}
	}
	return f
}

func checkSpec(fsys fs.FS, dir, rel string) FileReport {
	f := FileReport{Path: rel, Kind: KindSpec}
	data, err := fsys.ReadFile(filepath.Join(dir, rel))
	if err != nil {
		f.Damaged = true
		f.Detail = fmt.Sprintf("unreadable: %v", err)
		return f
	}
	spec, err := adl.Parse(string(data))
	if err != nil {
		f.Damaged = true
		f.Detail = fmt.Sprintf("does not parse: %v (reload the spec and delete this file)", err)
		return f
	}
	f.Detail = fmt.Sprintf("%d process schema(s), %d awareness schema(s)",
		len(spec.Processes), len(spec.Awareness))
	return f
}

func checkSnapshot(fsys fs.FS, dir, rel string, r *Report) FileReport {
	f := FileReport{Path: rel, Kind: KindSnapshot}
	data, err := fsys.ReadFile(filepath.Join(dir, rel))
	if err != nil {
		f.Damaged = true
		f.Detail = fmt.Sprintf("unreadable: %v", err)
		return f
	}
	c := enact.CheckSnapshot(data)
	if c.Damaged() {
		f.Damaged = true
		f.Detail = fmt.Sprintf("%v (delete the snapshot; the WAL replays from the previous one)", c.Err)
		return f
	}
	r.SnapshotSeq = c.LastSeq
	f.Records = c.Procs + c.Acts
	f.Detail = fmt.Sprintf("seq %d, %d process(es), %d activity instance(s)", c.LastSeq, c.Procs, c.Acts)
	return f
}

func checkWAL(fsys fs.FS, dir, rel string, quarantine bool, r *Report) FileReport {
	f := FileReport{Path: rel, Kind: KindWAL}
	path := filepath.Join(dir, rel)
	data, err := fsys.ReadFile(path)
	if err != nil {
		f.Damaged = true
		f.Detail = fmt.Sprintf("unreadable: %v", err)
		return f
	}
	c := enact.CheckWAL(data)
	f.Records, f.Torn, f.Corrupt, f.TornOffset = c.Records, c.Torn, c.Corrupt, c.TornOffset
	f.Damaged = c.Damaged()
	r.WALSeq = c.LastSeq
	switch {
	case c.Corrupt:
		f.Detail = fmt.Sprintf("corrupt mid-journal at offset %d: %d verified record(s) before it, committed history after it unreachable", c.TornOffset, c.Records)
	case c.SeqRegressions > 0:
		f.Detail = fmt.Sprintf("%d sequence regression(s): record order contradicts the commit order", c.SeqRegressions)
	case c.BadRecords > 0:
		f.Detail = fmt.Sprintf("%d undecodable committed record(s)", c.BadRecords)
	case c.Torn:
		f.Detail = fmt.Sprintf("torn tail at offset %d (a crashed append; replay ignores it): %d record(s), seq %d", c.TornOffset, c.Records, c.LastSeq)
	default:
		f.Detail = fmt.Sprintf("%d record(s), seq %d", c.Records, c.LastSeq)
	}
	maybeQuarantine(fsys, path, data, &f, quarantine)
	return f
}

func checkJournal(fsys fs.FS, dir, rel string, quarantine bool) FileReport {
	f := FileReport{Path: rel, Kind: KindJournal}
	path := filepath.Join(dir, rel)
	data, err := fsys.ReadFile(path)
	if err != nil {
		f.Damaged = true
		f.Detail = fmt.Sprintf("unreadable: %v", err)
		return f
	}
	c := delivery.CheckJournal(data)
	f.Records, f.Torn, f.Corrupt, f.TornOffset = c.Records, c.Torn, c.Corrupt, c.TornOffset
	f.Damaged = c.Damaged()
	switch {
	case c.Corrupt:
		f.Detail = fmt.Sprintf("corrupt mid-journal at offset %d: %d verified record(s) before it", c.TornOffset, c.Records)
	case c.IDRegressions > 0:
		f.Detail = fmt.Sprintf("%d notification-id regression(s)", c.IDRegressions)
	case c.BadRecords > 0:
		f.Detail = fmt.Sprintf("%d undecodable committed record(s)", c.BadRecords)
	case c.Torn:
		f.Detail = fmt.Sprintf("torn tail at offset %d (a crashed append; load ignores it): %d record(s), %d undelivered", c.TornOffset, c.Records, c.Notifs-c.Acks)
	default:
		f.Detail = fmt.Sprintf("%d record(s), %d undelivered, next id %d", c.Records, c.Notifs-c.Acks, c.NextID)
		if c.OrphanAcks > 0 {
			f.Detail += fmt.Sprintf("; %d orphan ack(s)", c.OrphanAcks)
		}
	}
	maybeQuarantine(fsys, path, data, &f, quarantine)
	return f
}

func checkSpool(fsys fs.FS, dir, rel string, quarantine bool) FileReport {
	f := FileReport{Path: rel, Kind: KindSpool}
	path := filepath.Join(dir, rel)
	data, err := fsys.ReadFile(path)
	if err != nil {
		f.Damaged = true
		f.Detail = fmt.Sprintf("unreadable: %v", err)
		return f
	}
	c := federation.CheckSpool(data)
	f.Records, f.Torn, f.Corrupt, f.TornOffset = c.Records, c.Torn, c.Corrupt, c.TornOffset
	f.Damaged = c.Damaged()
	switch {
	case c.Corrupt:
		f.Detail = fmt.Sprintf("corrupt mid-journal at offset %d: %d verified record(s) before it; the forwarder refuses to open it", c.TornOffset, c.Records)
	case c.BadRecords > 0:
		f.Detail = fmt.Sprintf("%d undecodable committed record(s)", c.BadRecords)
	case c.Torn:
		f.Detail = fmt.Sprintf("torn tail at offset %d (a crashed append; load ignores it): %d record(s), %d pending", c.TornOffset, c.Records, c.Pending)
	default:
		f.Detail = fmt.Sprintf("%d record(s), %d pending", c.Records, c.Pending)
		if c.OrphanDones > 0 {
			f.Detail += fmt.Sprintf("; %d orphan done(s)", c.OrphanDones)
		}
	}
	maybeQuarantine(fsys, path, data, &f, quarantine)
	return f
}

// maybeQuarantine repairs a damaged or torn journal under -quarantine:
// the suffix from the damage point on is saved to `<path>.quarantine`
// (evidence: for mid-journal corruption it still holds checksum-valid
// frames) and the journal is atomically truncated to its verified
// prefix. A torn tail is also trimmed — harmless to keep, but trimming
// it makes the post-fsck journal byte-exact with what loads.
func maybeQuarantine(fsys fs.FS, path string, data []byte, f *FileReport, quarantine bool) {
	if !quarantine || !f.Torn || f.TornOffset < 0 || f.TornOffset > int64(len(data)) {
		return
	}
	suffix := data[f.TornOffset:]
	if err := fs.ReplaceFile(fsys, path+".quarantine", suffix, true); err != nil {
		f.Detail += fmt.Sprintf("; quarantine failed: %v", err)
		return
	}
	if err := fs.ReplaceFile(fsys, path, data[:f.TornOffset], true); err != nil {
		f.Detail += fmt.Sprintf("; truncate failed: %v", err)
		return
	}
	f.Quarantined = true
	f.Detail += fmt.Sprintf("; suffix (%d byte(s)) moved to %s, journal truncated to verified prefix",
		len(suffix), filepath.Base(path)+".quarantine")
}

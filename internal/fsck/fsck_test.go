package fsck

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/mcc-cmi/cmi/internal/delivery"
	"github.com/mcc-cmi/cmi/internal/federation"
	"github.com/mcc-cmi/cmi/internal/fs"
	"github.com/mcc-cmi/cmi/internal/system"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

const testSpec = `
process Solo {
    activity Work role org Worker
}
awareness Done on Solo {
    root = activity Work to (Completed)
    deliver org Worker
    describe "done"
}
`

// buildStateDir produces a realistic state directory holding every
// artifact kind fsck understands: a persisted spec, an enactment WAL
// with committed records, a compaction snapshot, a participant delivery
// journal, and a federation spool with pending entries.
func buildStateDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := system.New(system.Config{Clock: vclock.NewVirtual(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSpec(testSpec); err != nil {
		t.Fatal(err)
	}
	if err := s.AddHuman("w1", "Worker One"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignRole("Worker", "w1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.StartProcess("Solo", "w1"); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot mid-way so both the snapshot and post-snapshot WAL
	// records exist.
	if err := s.Coordination().Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.StartProcess("Solo", "w1"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Store().Enqueue("w1", delivery.Notification{Schema: "Done", Description: "n"}); err != nil {
			t.Fatal(err)
		}
	}
	// A spool with pending entries: the remote is unreachable, so the
	// pushes stay journaled.
	fwd, err := federation.NewForwarder(federation.ForwarderConfig{
		Client:    federation.NewRemoteClient("http://127.0.0.1:9", nil),
		SpoolPath: filepath.Join(dir, "spool.journal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fwd.Forward("bob", delivery.Notification{Schema: "Done", Description: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func findFile(t *testing.T, r *Report, path string) FileReport {
	t.Helper()
	for _, f := range r.Files {
		if f.Path == path {
			return f
		}
	}
	t.Fatalf("no report for %s in %+v", path, r.Files)
	return FileReport{}
}

// specFile returns the persisted spec's relative path.
func specFile(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "specs"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no persisted specs: %v", err)
	}
	return filepath.Join("specs", entries[0].Name())
}

func TestCleanStateDirChecksClean(t *testing.T) {
	dir := buildStateDir(t)
	r, err := Check(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean() || r.Damaged != 0 {
		t.Fatalf("fresh state dir not clean: %+v", r.Files)
	}
	for _, want := range []struct{ path, kind string }{
		{"enact.wal", KindWAL},
		{"enact.snap", KindSnapshot},
		{"w1.jsonl", KindJournal},
		{"spool.journal", KindSpool},
		{specFile(t, dir), KindSpec},
	} {
		f := findFile(t, r, want.path)
		if f.Kind != want.kind || f.Damaged {
			t.Errorf("%s: kind=%s damaged=%v, want kind=%s clean", want.path, f.Kind, f.Damaged, want.kind)
		}
	}
	if r.SnapshotSeq <= 0 {
		t.Errorf("snapshot seq high-water not reported: %+v", r)
	}
}

func TestCheckMissingDirErrors(t *testing.T) {
	if _, err := Check(filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Fatal("want error for missing state dir")
	}
}

// TestDetectsEveryInjectedCorruption is the detection guarantee behind
// the chaos oracle's disk-fault invariant: each subtest injects one
// kind of damage into one artifact and fsck MUST flag exactly that
// file. Frame corruption uses the same fs.CorruptFrame primitive the
// fault filesystem's corrupt@N schedule uses.
func TestDetectsEveryInjectedCorruption(t *testing.T) {
	cases := []struct {
		name    string
		inject  func(t *testing.T, dir string) string // returns the path that must be flagged
		corrupt bool                                   // expect mid-journal classification
	}{
		{"wal-mid-journal-bitrot", func(t *testing.T, dir string) string {
			if _, err := fs.CorruptFrame(filepath.Join(dir, "enact.wal"), 1); err != nil {
				t.Fatal(err)
			}
			return "enact.wal"
		}, true},
		{"delivery-journal-bitrot", func(t *testing.T, dir string) string {
			if _, err := fs.CorruptFrame(filepath.Join(dir, "w1.jsonl"), 2); err != nil {
				t.Fatal(err)
			}
			return "w1.jsonl"
		}, true},
		{"spool-bitrot", func(t *testing.T, dir string) string {
			if _, err := fs.CorruptFrame(filepath.Join(dir, "spool.journal"), 0); err != nil {
				t.Fatal(err)
			}
			return "spool.journal"
		}, true},
		{"snapshot-garbage", func(t *testing.T, dir string) string {
			if err := os.WriteFile(filepath.Join(dir, "enact.snap"), []byte("{broken"), 0o644); err != nil {
				t.Fatal(err)
			}
			return "enact.snap"
		}, false},
		{"spec-garbage", func(t *testing.T, dir string) string {
			rel := specFile(t, dir)
			if err := os.WriteFile(filepath.Join(dir, rel), []byte("process {{{"), 0o644); err != nil {
				t.Fatal(err)
			}
			return rel
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := buildStateDir(t)
			flagged := tc.inject(t, dir)
			r, err := Check(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r.Damaged != 1 {
				t.Fatalf("want exactly the injected damage flagged, got %d damaged: %+v", r.Damaged, r.Files)
			}
			f := findFile(t, r, flagged)
			if !f.Damaged {
				t.Fatalf("%s not flagged: %+v", flagged, f)
			}
			if f.Corrupt != tc.corrupt {
				t.Fatalf("%s: corrupt=%v, want %v (%s)", flagged, f.Corrupt, tc.corrupt, f.Detail)
			}
		})
	}
}

// TestStrayTmpReported: a leftover .tmp from an interrupted atomic
// replacement fails Clean and is removed under Quarantine.
func TestStrayTmpReported(t *testing.T) {
	dir := buildStateDir(t)
	stray := filepath.Join(dir, "enact.snap.tmp")
	if err := os.WriteFile(stray, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Check(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean() {
		t.Fatal("stray tmp not reported")
	}
	f := findFile(t, r, "enact.snap.tmp")
	if f.Kind != KindTmp || f.Damaged {
		t.Fatalf("stray tmp misclassified: %+v", f)
	}
	r, err = Check(dir, Options{Quarantine: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean() {
		t.Fatalf("quarantine left the dir unclean: %+v", r.Files)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray tmp not removed")
	}
}

// TestQuarantineRepairsJournalsAndDomainReboots is the repair
// round-trip: corrupt all three durable logs mid-journal, quarantine,
// verify the evidence files exist and a re-check is damage-free, then
// boot a real system on the repaired directory and verify it serves
// healthy (no corrupt flag, no poisoned logs).
func TestQuarantineRepairsJournalsAndDomainReboots(t *testing.T) {
	dir := buildStateDir(t)
	for _, target := range []struct {
		file string
		idx  int
	}{{"enact.wal", 1}, {"w1.jsonl", 2}, {"spool.journal", 0}} {
		if _, err := fs.CorruptFrame(filepath.Join(dir, target.file), target.idx); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Check(dir, Options{Quarantine: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Damaged != 3 {
		t.Fatalf("want 3 damaged journals, got %d: %+v", r.Damaged, r.Files)
	}
	for _, name := range []string{"enact.wal", "w1.jsonl", "spool.journal"} {
		f := findFile(t, r, name)
		if !f.Quarantined {
			t.Fatalf("%s not quarantined: %s", name, f.Detail)
		}
		if _, err := os.Stat(filepath.Join(dir, name+".quarantine")); err != nil {
			t.Fatalf("%s.quarantine evidence missing: %v", name, err)
		}
	}

	// The .quarantine siblings are not durable-log artifacts; a
	// re-check of the repaired journals finds no damage.
	r, err = Check(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Damaged != 0 {
		t.Fatalf("repaired dir still damaged: %+v", r.Files)
	}

	s, err := system.New(system.Config{Clock: vclock.NewVirtual(), StateDir: dir})
	if err != nil {
		t.Fatalf("boot on repaired dir: %v", err)
	}
	defer s.Close()
	if rec := s.Recovery(); rec.Corrupt {
		t.Fatalf("repaired WAL still reads corrupt: %+v", rec)
	}
	if err := s.AddHuman("w1", "Worker One"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignRole("Worker", "w1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); !h.Healthy {
		t.Fatalf("repaired domain unhealthy: %+v", h)
	}
	// The repaired WAL accepts fresh appends again.
	if _, err := s.StartProcess("Solo", "w1"); err != nil {
		t.Fatalf("write on repaired dir: %v", err)
	}
	// The repaired spool reopens for the forwarder.
	fwd, err := federation.NewForwarder(federation.ForwarderConfig{
		Client:    federation.NewRemoteClient("http://127.0.0.1:9", nil),
		SpoolPath: filepath.Join(dir, "spool.journal"),
	})
	if err != nil {
		t.Fatalf("reopen repaired spool: %v", err)
	}
	fwd.Close()
}

package crisis

import (
	"fmt"
	"sort"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/enact"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

// A TimelineRow is one bar of the Figure 1 Gantt chart: one activity
// instance of the crisis information gathering scenario.
type TimelineRow struct {
	Label    string
	Start    time.Time
	End      time.Time
	Optional bool
}

// Figure1Result is the regenerated Figure 1.
type Figure1Result struct {
	ProcessStart time.Time
	ProcessEnd   time.Time
	Rows         []TimelineRow
	// Notifications delivered during the scenario, per participant.
	Notifications map[string]int
	// Events is the number of primitive activity events emitted.
	Events int
}

// driver wraps a system with scenario helpers.
type driver struct {
	sys   *cmi.System
	clk   *vclock.Virtual
	staff Staff
}

func (d *driver) step(dur time.Duration) { d.clk.Advance(dur) }

func (d *driver) find(processID, varName string, state cmi.State) (enact.ActivityInfo, error) {
	for _, ai := range d.sys.Coordination().ActivitiesOf(processID) {
		if ai.Var == varName && ai.State == state {
			return ai, nil
		}
	}
	return enact.ActivityInfo{}, fmt.Errorf("crisis: no %s instance of %q in %s", state, varName, processID)
}

// run starts and, dur later, completes one activity instance.
func (d *driver) run(processID, varName, user string, dur time.Duration) error {
	ai, err := d.find(processID, varName, cmi.Ready)
	if err != nil {
		return err
	}
	if err := d.sys.Coordination().Start(ai.ID, user); err != nil {
		return err
	}
	d.step(dur)
	return d.sys.Coordination().Complete(ai.ID, user)
}

// spawnTaskForce starts one task-force subprocess, staffs it, runs its
// investigation and optionally an information request, and reports.
func (d *driver) spawnTaskForce(processID, varName, leader string, members []string, dur time.Duration, withRequest bool) error {
	ai, err := d.find(processID, varName, cmi.Ready)
	if err != nil {
		return err
	}
	co := d.sys.Coordination()
	if err := co.Start(ai.ID, d.staff.Leader); err != nil {
		return err
	}
	tfID := ai.ID // the subprocess shares the activity instance id
	if err := d.sys.SetScopedRole(tfID, "tfc", "TaskForceLeader", leader); err != nil {
		return err
	}
	if err := d.sys.SetScopedRole(tfID, "tfc", "TaskForceMembers", append([]string{leader}, members...)...); err != nil {
		return err
	}
	if err := d.sys.SetContextField(tfID, "tfc", "TaskForceDeadline", d.clk.Now().Add(10*dur)); err != nil {
		return err
	}
	if err := d.run(tfID, "Organize", d.staff.Leader, dur/4); err != nil {
		return err
	}
	if withRequest {
		req, err := d.find(tfID, "RequestInfo", cmi.Ready)
		if err != nil {
			return err
		}
		if err := co.Start(req.ID, leader); err != nil {
			return err
		}
		if err := d.sys.SetScopedRole(req.ID, "irc", "Requestor", leader); err != nil {
			return err
		}
		if err := d.sys.SetContextField(req.ID, "irc", "RequestDeadline", d.clk.Now().Add(5*dur)); err != nil {
			return err
		}
		if err := d.run(req.ID, "Gather", members[0], dur/2); err != nil {
			return err
		}
		if err := d.run(req.ID, "Integrate", members[0], dur/4); err != nil {
			return err
		}
	}
	if err := d.run(tfID, "Investigate", members[0], dur); err != nil {
		return err
	}
	return d.run(tfID, "ReportFindings", leader, dur/4)
}

// RunFigure1 drives the Figure 1 scenario on a fresh system and returns
// the regenerated timeline. The scenario is deterministic.
func RunFigure1() (*Figure1Result, error) {
	clk := vclock.NewVirtual()
	sys, err := cmi.New(cmi.Config{Clock: clk})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	model, err := NewModel()
	if err != nil {
		return nil, err
	}
	if err := model.Install(sys); err != nil {
		return nil, err
	}
	staff, err := SeedStaff(sys, 6)
	if err != nil {
		return nil, err
	}

	// Record activity spans from the primitive event stream.
	type span struct {
		label    string
		start    time.Time
		end      time.Time
		optional bool
	}
	spans := map[string]*span{}
	optionalVars := map[string]bool{
		"MediaTaskForce": true, "LabTest": true, "LocalExpertise": true, "RequestInfo": true,
	}
	sys.Coordination().Observe(eventRecorder(func(instID, varName, newState string, ts time.Time) {
		if varName == "" {
			return // top-level process transitions
		}
		sp, ok := spans[instID]
		if !ok {
			sp = &span{label: varName, optional: optionalVars[varName]}
			spans[instID] = sp
		}
		st := core.State(newState)
		if core.GenericStateSchema().IsSubstateOf(st, core.Running) && sp.start.IsZero() {
			sp.start = ts
		}
		if core.GenericStateSchema().IsSubstateOf(st, core.Closed) {
			sp.end = ts
		}
	}))
	var eventCount int
	sys.Coordination().Observe(eventRecorder(func(string, string, string, time.Time) { eventCount++ }))

	if err := sys.Start(); err != nil {
		return nil, err
	}

	d := &driver{sys: sys, clk: clk, staff: staff}
	const h = time.Hour

	pi, err := sys.StartProcess("InformationGathering", staff.Leader)
	if err != nil {
		return nil, err
	}
	t0 := clk.Now()
	co := sys.Coordination()

	// The agency becomes aware of the outbreak.
	if err := d.run(pi.ID(), "ReceiveReports", staff.Leader, 2*h); err != nil {
		return nil, err
	}
	if err := d.run(pi.ID(), "AssessSituation", staff.Leader, 3*h); err != nil {
		return nil, err
	}

	// Three task forces, staggered, as in Figure 1.
	if err := d.spawnTaskForce(pi.ID(), "PatientInterviews", staff.Epidemiologists[0],
		staff.Epidemiologists[1:3], 8*h, true); err != nil {
		return nil, err
	}
	d.step(2 * h)
	// First lab test issued while the next force forms.
	lab1, err := co.Instantiate(pi.ID(), "LabTest", staff.Leader)
	if err != nil {
		return nil, err
	}
	if err := co.Start(lab1.ID, staff.LabTechs[0]); err != nil {
		return nil, err
	}

	if err := d.spawnTaskForce(pi.ID(), "HospitalRelations", staff.Epidemiologists[3],
		staff.Epidemiologists[4:5], 6*h, false); err != nil {
		return nil, err
	}
	if err := co.Complete(lab1.ID, staff.LabTechs[0]); err != nil {
		return nil, err
	}

	// Local expertise consulted.
	exp1, err := co.Instantiate(pi.ID(), "LocalExpertise", staff.Leader)
	if err != nil {
		return nil, err
	}
	if err := co.Start(exp1.ID, staff.Epidemiologists[5]); err != nil {
		return nil, err
	}
	d.step(4 * h)
	if err := co.Complete(exp1.ID, staff.Epidemiologists[5]); err != nil {
		return nil, err
	}

	// Second and third lab tests.
	for i, tech := range []string{staff.LabTechs[1], staff.LabTechs[0]} {
		lab, err := co.Instantiate(pi.ID(), "LabTest", staff.Leader)
		if err != nil {
			return nil, err
		}
		if err := co.Start(lab.ID, tech); err != nil {
			return nil, err
		}
		d.step(time.Duration(3+i) * h)
		if err := co.Complete(lab.ID, tech); err != nil {
			return nil, err
		}
	}

	if err := d.spawnTaskForce(pi.ID(), "VectorOfTransmission", staff.Epidemiologists[1],
		staff.Epidemiologists[2:4], 7*h, false); err != nil {
		return nil, err
	}

	// Media task force and a second expertise consult, optional.
	if err := d.spawnMediaForce(pi.ID()); err != nil {
		return nil, err
	}
	exp2, err := co.Instantiate(pi.ID(), "LocalExpertise", staff.Leader)
	if err != nil {
		return nil, err
	}
	if err := co.Start(exp2.ID, staff.Epidemiologists[0]); err != nil {
		return nil, err
	}
	d.step(2 * h)
	if err := co.Complete(exp2.ID, staff.Epidemiologists[0]); err != nil {
		return nil, err
	}

	// The strategy activity became ready when the three mandatory task
	// forces reported (and-join); finish the process.
	if err := d.run(pi.ID(), "DevelopStrategy", staff.Leader, 5*h); err != nil {
		return nil, err
	}
	if st, _ := co.ProcessState(pi.ID()); st != cmi.Completed {
		return nil, fmt.Errorf("crisis: information gathering ended %s, want Completed", st)
	}
	end := clk.Now()
	sys.Drain()

	res := &Figure1Result{
		ProcessStart:  t0,
		ProcessEnd:    end,
		Notifications: map[string]int{},
		Events:        eventCount,
	}
	for _, sp := range spans {
		if sp.start.IsZero() {
			continue // never started (e.g. terminated leftovers)
		}
		res.Rows = append(res.Rows, TimelineRow{
			Label: sp.label, Start: sp.start, End: sp.end, Optional: sp.optional,
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		if !res.Rows[i].Start.Equal(res.Rows[j].Start) {
			return res.Rows[i].Start.Before(res.Rows[j].Start)
		}
		return res.Rows[i].Label < res.Rows[j].Label
	})
	parts, err := sys.Store().Participants()
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		hist, err := sys.Store().History(p)
		if err != nil {
			return nil, err
		}
		res.Notifications[p] = len(hist)
	}
	return res, nil
}

func (d *driver) spawnMediaForce(processID string) error {
	co := d.sys.Coordination()
	media, err := co.Instantiate(processID, "MediaTaskForce", d.staff.Leader)
	if err != nil {
		return err
	}
	if err := co.Start(media.ID, d.staff.Leader); err != nil {
		return err
	}
	tfID := media.ID
	if err := d.sys.SetScopedRole(tfID, "tfc", "TaskForceLeader", d.staff.Epidemiologists[4]); err != nil {
		return err
	}
	if err := d.sys.SetScopedRole(tfID, "tfc", "TaskForceMembers", d.staff.Epidemiologists[4], d.staff.Epidemiologists[5]); err != nil {
		return err
	}
	if err := d.run(tfID, "Organize", d.staff.Leader, time.Hour); err != nil {
		return err
	}
	if err := d.run(tfID, "Investigate", d.staff.Epidemiologists[5], 3*time.Hour); err != nil {
		return err
	}
	return d.run(tfID, "ReportFindings", d.staff.Epidemiologists[4], time.Hour)
}

// eventRecorder adapts a callback to event.Consumer for activity events.
type eventRecorder func(instanceID, varName, newState string, ts time.Time)

// Consume implements event.Consumer.
func (f eventRecorder) Consume(ev cmi.Event) {
	f(ev.String("activityInstanceId"), ev.String("activityVariableId"), ev.String("newState"), ev.Time())
}

package crisis

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mcc-cmi/cmi/internal/awareness"
	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/delivery"
	"github.com/mcc-cmi/cmi/internal/event"
	"github.com/mcc-cmi/cmi/internal/fs"
	"github.com/mcc-cmi/cmi/internal/obs"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

// This file holds the many-instance ingest workload behind the sharded
// awareness benchmarks: a large population of independent process
// instances, each emitting a stream of activity state changes, watched
// by one awareness schema that detects on every event. Per-instance
// operator state (Section 5.1.2) makes the instances independent, so the
// workload exposes exactly the parallelism the sharded detection pool
// exploits; each detection is journaled durably per shard, mirroring the
// persistent delivery queues of Section 6.5.

// IngestProcessSchema returns the minimal process schema of the ingest
// workload: one repeatable work activity.
func IngestProcessSchema() *core.ProcessSchema {
	return &core.ProcessSchema{
		Name: "Ingest",
		Activities: []core.ActivityVariable{
			{Name: "Work", Repeatable: true,
				Schema: &core.BasicActivitySchema{Name: "IngestWork", PerformerRole: core.OrgRole("Epidemiologist")}},
		},
	}
}

// IngestSchemas returns the awareness schemas of the ingest workload
// over the given process schema: every start of the work activity is
// counted and detected.
func IngestSchemas(p *core.ProcessSchema) []*awareness.Schema {
	return []*awareness.Schema{{
		Name:         "WorkStarted",
		Process:      p,
		Description:  &awareness.CountNode{Input: &awareness.ActivitySource{Av: "Work", New: []core.State{core.Running}}},
		DeliveryRole: core.OrgRole("CrisisLeader"),
		Text:         "work activity started",
	}}
}

// IngestEvents generates the workload's primitive activity events:
// eventsPerInstance work-activity starts for each of instances distinct
// process instances, round-robin across instances (the adversarial
// interleaving for per-instance state).
func IngestEvents(clock vclock.Clock, instances, eventsPerInstance int) []event.Event {
	out := make([]event.Event, 0, instances*eventsPerInstance)
	for round := 0; round < eventsPerInstance; round++ {
		for i := 0; i < instances; i++ {
			inst := fmt.Sprintf("ing-%d", i)
			out = append(out, event.NewActivity(clock.Next(), "coordination-engine", event.ActivityChange{
				ActivityInstanceID:      fmt.Sprintf("%s/Work-%d", inst, round),
				ParentProcessSchemaID:   "Ingest",
				ParentProcessInstanceID: inst,
				ActivityVariableID:      "Work",
				OldState:                string(core.Ready),
				NewState:                string(core.Running),
			}))
		}
	}
	return out
}

// A JournalSink durably journals every detection it consumes: one line
// appended and fsynced per event, the way the delivery agent's
// persistent queues journal notifications. It is safe for concurrent
// use only in the sense the benchmark needs — one sink per shard, each
// driven by a single detector agent.
//
// A failed append or fsync permanently poisons the sink (fsyncgate
// semantics: the durable suffix is unknown after the first failure, and
// retrying Sync on the same descriptor can falsely succeed). Poisoned
// sinks drop further events without counting them; Err surfaces the
// failure so the run fails loudly instead of under-reporting.
type JournalSink struct {
	mu  sync.Mutex
	f   fs.File
	err error
	n   atomic.Uint64
}

// NewJournalSink opens (creating or truncating) the journal file.
func NewJournalSink(path string) (*JournalSink, error) {
	return NewJournalSinkFS(path, nil)
}

// NewJournalSinkFS is NewJournalSink on an explicit filesystem (nil
// means the real one) — the seam tests inject storage faults through.
func NewJournalSinkFS(path string, fsys fs.FS) (*JournalSink, error) {
	f, err := fs.Or(fsys).Create(path)
	if err != nil {
		return nil, err
	}
	return &JournalSink{f: f}, nil
}

// Consume implements event.Consumer: append one record and sync. The
// detection counts as journaled only when both succeed.
func (j *JournalSink) Consume(ev event.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if _, err := fmt.Fprintf(j.f, "%s %s\n", ev.InstanceID(), ev.String(event.PSchemaName)); err != nil {
		j.err = fmt.Errorf("crisis: journal append: %w", err)
		return
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("crisis: journal sync: %w", err)
		return
	}
	j.n.Add(1)
}

// Count returns how many detections were journaled.
func (j *JournalSink) Count() uint64 { return j.n.Load() }

// Err returns the sticky append/fsync failure that poisoned the sink,
// if any.
func (j *JournalSink) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close closes the journal file.
func (j *JournalSink) Close() error { return j.f.Close() }

// A StoreSink fans every detection it consumes out to a fixed
// participant set through a shared delivery.Store — the real persistent
// notification queues of Section 6.5 rather than JournalSink's ad-hoc
// files. One StoreSink is shared by every shard, so concurrent shards
// hit the same participant queues and exercise the store's per-queue
// group-commit journal: the benchmark's localJournal curve only scales
// with shards if concurrent appends coalesce their flushes.
type StoreSink struct {
	Store *delivery.Store
	Users []string
	n     atomic.Uint64
}

// Consume implements event.Consumer: build the notification once and
// enqueue it durably for every user via the batch fan-out path.
func (s *StoreSink) Consume(ev event.Event) {
	n := delivery.NotificationFromEvent(ev)
	if _, _, err := s.Store.EnqueueFanout(s.Users, "", n); err != nil {
		return
	}
	s.n.Add(1)
}

// ConsumeBatch implements event.BatchConsumer: a detection shard's
// drained batch fans out in one EnqueueFanoutBatch call, so all its
// records for one participant queue share a single lock acquisition and
// commit-group join.
func (s *StoreSink) ConsumeBatch(evs []event.Event) {
	items := make([]delivery.FanoutItem, len(evs))
	for i, ev := range evs {
		items[i] = delivery.FanoutItem{Users: s.Users, N: delivery.NotificationFromEvent(ev)}
	}
	queued, _, err := s.Store.EnqueueFanoutBatch(items)
	if err != nil {
		return
	}
	for i := range queued {
		if queued[i] > 0 {
			s.n.Add(1)
		}
	}
}

// Count returns how many detections were enqueued.
func (s *StoreSink) Count() uint64 { return s.n.Load() }

// A RemoteSink models the delivery agent's synchronous notification push
// to a remote client tool — a CORBA call in the paper's implementation
// (Section 6.5) — as a fixed per-detection service latency, then forwards
// to the inner consumer. Sharded detection overlaps these waits: while
// one shard's push is in flight, the other shards keep detecting and
// pushing, which is the pipeline property the benchmark measures.
type RemoteSink struct {
	Latency time.Duration
	Inner   event.Consumer
}

// Consume implements event.Consumer.
func (r *RemoteSink) Consume(ev event.Event) {
	if r.Latency > 0 {
		time.Sleep(r.Latency)
	}
	if r.Inner != nil {
		r.Inner.Consume(ev)
	}
}

// IngestConfig sizes one ingest run.
type IngestConfig struct {
	// Shards is the awareness engine's shard count (1 = one worker).
	Shards int
	// Instances is how many independent process instances emit events.
	Instances int
	// EventsPerInstance is how many work starts each instance emits.
	EventsPerInstance int
	// Dir is where the per-shard detection journals are written.
	Dir string
	// Store, if non-nil, selects the store-backed journal path: every
	// detection is enqueued durably into this delivery store (fanned out
	// to FanoutUsers) instead of the per-shard JournalSink files. The
	// store is shared by all shards, so the run measures the store's
	// group-commit journal under shard concurrency.
	Store *delivery.Store
	// FanoutUsers are the participants each detection fans out to on the
	// Store path. Default: the single queue "crisis-leader".
	FanoutUsers []string
	// DeliveryLatency, if positive, models the synchronous push of each
	// detection to a remote client tool (Section 6.5) as a fixed wait in
	// front of the journal. Zero measures the local path only.
	DeliveryLatency time.Duration
	// Metrics, if non-nil, instruments the run's awareness engine and
	// detector pool (per-shard injected/detected/latency series), so a
	// benchmark can both measure throughput with instrumentation enabled
	// and print a metrics snapshot afterwards.
	Metrics *obs.Registry
}

// IngestResult reports one ingest run.
type IngestResult struct {
	Shards       int
	Events       int
	Detections   uint64
	Elapsed      time.Duration
	EventsPerSec float64 // events per second
}

// RunIngest pushes the workload through a sharded awareness engine with
// per-shard durable detection journals and reports throughput. Every
// detection is journaled before Stop returns (drain-on-Stop), so the
// measured interval covers full, durable processing of every event.
func RunIngest(cfg IngestConfig) (IngestResult, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Instances < 1 {
		cfg.Instances = 1
	}
	if cfg.EventsPerInstance < 1 {
		cfg.EventsPerInstance = 1
	}
	proc := IngestProcessSchema()
	if err := proc.Validate(); err != nil {
		return IngestResult{}, err
	}
	var (
		count   func() uint64
		sink    func(shard int) event.Consumer
		sinkErr func() error
	)
	if cfg.Store != nil {
		users := cfg.FanoutUsers
		if len(users) == 0 {
			users = []string{"crisis-leader"}
		}
		shared := &StoreSink{Store: cfg.Store, Users: users}
		cfg.Store.Instrument(cfg.Metrics)
		count = shared.Count
		sink = func(int) event.Consumer { return shared }
	} else {
		sinks := make([]*JournalSink, cfg.Shards)
		for i := range sinks {
			s, err := NewJournalSink(filepath.Join(cfg.Dir, fmt.Sprintf("detections-%d.log", i)))
			if err != nil {
				return IngestResult{}, err
			}
			sinks[i] = s
		}
		defer func() {
			for _, s := range sinks {
				s.Close()
			}
		}()
		count = func() uint64 {
			var n uint64
			for _, s := range sinks {
				n += s.Count()
			}
			return n
		}
		sink = func(shard int) event.Consumer { return sinks[shard] }
		sinkErr = func() error {
			for _, s := range sinks {
				if err := s.Err(); err != nil {
					return err
				}
			}
			return nil
		}
	}
	eng := awareness.NewEngine(nil, awareness.Options{
		Shards:  cfg.Shards,
		Metrics: cfg.Metrics,
		ShardSink: func(shard int) event.Consumer {
			if cfg.DeliveryLatency > 0 {
				return &RemoteSink{Latency: cfg.DeliveryLatency, Inner: sink(shard)}
			}
			return sink(shard)
		},
	})
	if err := eng.Define(IngestSchemas(proc)...); err != nil {
		return IngestResult{}, err
	}
	events := IngestEvents(vclock.NewVirtual(), cfg.Instances, cfg.EventsPerInstance)
	if err := eng.Start(); err != nil {
		return IngestResult{}, err
	}
	start := time.Now()
	for _, ev := range events {
		eng.Consume(ev)
	}
	eng.Stop() // drains every shard: all detections journaled
	elapsed := time.Since(start)

	if sinkErr != nil {
		if err := sinkErr(); err != nil {
			return IngestResult{}, fmt.Errorf("crisis: ingest journal poisoned: %w", err)
		}
	}
	detections := count()
	want := uint64(len(events))
	if detections != want {
		return IngestResult{}, fmt.Errorf("crisis: ingest at %d shards journaled %d detections, want %d",
			cfg.Shards, detections, want)
	}
	return IngestResult{
		Shards:       cfg.Shards,
		Events:       len(events),
		Detections:   detections,
		Elapsed:      elapsed,
		EventsPerSec: float64(len(events)) / elapsed.Seconds(),
	}, nil
}

package crisis

import (
	"fmt"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/wfms"
)

// Deployment reproduces the scale of the DARPA intelligence-gathering
// demonstration reported in Section 7: nine collaboration processes with
// more than fifty CMM activities, eight awareness specifications, and
// thirty basic activity scripts for creating and managing context
// resources; CMM activity translation into the (stand-in) commercial
// WfMS results in a few hundred WfMS activities.
type Deployment struct {
	// Processes are the nine collaboration process schemas. The first
	// three are the epidemic model (information gathering, task force,
	// information request); the rest cover the surrounding crisis
	// response.
	Processes []*cmi.ProcessSchema
	// Awareness are the eight awareness specifications.
	Awareness []*cmi.AwarenessSchema
	// Scripts are the thirty context-management scripts.
	Scripts []Script
}

// A Script is one basic activity script for creating and managing
// context resources (Section 7). Scripts run against the system's
// context registry.
type Script struct {
	Name string
	// Apply performs the script's effect: creating a context of the
	// given schema or mutating a field of an existing instance.
	Apply func(sys *cmi.System) error
}

// Inventory summarizes the deployment for the Section 7 comparison.
type Inventory struct {
	Processes      int
	CMMActivities  int
	AwarenessSpecs int
	Scripts        int
	// WfMSActivities is the activity count after translation to the
	// WfMS substrate; Expansion is WfMS/CMM.
	WfMSActivities int
	Expansion      float64
}

// NewDeployment builds the deployment-scale model.
func NewDeployment() (*Deployment, error) {
	model, err := NewModel()
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Processes: []*cmi.ProcessSchema{
			model.InformationGathering,
			model.TaskForce,
			model.InfoRequest,
		},
		Awareness: append([]*cmi.AwarenessSchema(nil), model.Awareness...),
	}

	// Six further collaboration processes of the crisis response, each a
	// staged pipeline with a mid-point fan-out/fan-in, led by the crisis
	// leader with epidemiologist staffing.
	themes := []struct {
		name   string
		stages []string
	}{
		{"ContainmentPlanning", []string{"ScopeOutbreak", "ModelSpread", "DraftMeasures", "ReviewMeasures", "ApproveMeasures", "PublishPlan"}},
		{"MediaResponse", []string{"DraftStatement", "LegalReview", "ScienceReview", "ReconcileReviews", "BriefSpokesperson", "HoldBriefing", "MonitorCoverage"}},
		{"ResourceAllocation", []string{"InventorySupplies", "ForecastNeeds", "PrioritizeRegions", "AllocateStock", "ArrangeTransport", "ConfirmDelivery"}},
		{"FieldDeployment", []string{"SelectTeams", "IssueEquipment", "TravelToSite", "EstablishBase", "ReportReadiness", "RotateTeams", "Debrief"}},
		{"IntelFusion", []string{"CollectReports", "VetSources", "CorrelateSignals", "AssessThreat", "DisseminateAssessment", "ArchiveIntel"}},
		{"AfterActionReview", []string{"GatherLogs", "InterviewParticipants", "TimelineEvents", "IdentifyLessons", "DraftReport", "SignOffReport"}},
	}
	statusCtx := &cmi.ResourceSchema{
		Name: "ResponseStatusContext",
		Kind: cmi.ContextResource,
		Fields: []cmi.FieldDef{
			{Name: "Owner", Type: cmi.FieldRole},
			{Name: "Phase", Type: cmi.FieldString},
			{Name: "Progress", Type: cmi.FieldInt},
			{Name: "Escalated", Type: cmi.FieldBool},
		},
	}
	for _, th := range themes {
		p := &cmi.ProcessSchema{
			Name: th.name,
			ResourceVars: []cmi.ResourceVariable{
				{Name: "status", Usage: cmi.UsageLocal, Schema: statusCtx},
			},
		}
		for i, stage := range th.stages {
			role := cmi.OrgRole("Epidemiologist")
			if i == 0 || i == len(th.stages)-1 {
				role = cmi.OrgRole("CrisisLeader")
			}
			p.Activities = append(p.Activities, cmi.ActivityVariable{
				Name:   stage,
				Schema: &cmi.BasicActivitySchema{Name: th.name + "/" + stage, PerformerRole: role},
			})
			if i > 0 {
				p.Dependencies = append(p.Dependencies, cmi.Dependency{
					Type: cmi.DepSequence, Sources: []string{th.stages[i-1]}, Target: stage,
				})
			}
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("crisis: %s: %w", th.name, err)
		}
		d.Processes = append(d.Processes, p)
	}

	// Five further awareness specifications over the response processes,
	// bringing the total to eight.
	mk := func(name string, proc *cmi.ProcessSchema, desc cmi.Node, role cmi.RoleRef, text string) *cmi.AwarenessSchema {
		return &cmi.AwarenessSchema{
			Name: name, Process: proc, Description: desc,
			DeliveryRole: role, Assignment: cmi.AssignIdentity, Text: text,
		}
	}
	byName := map[string]*cmi.ProcessSchema{}
	for _, p := range d.Processes {
		byName[p.Name] = p
	}
	d.Awareness = append(d.Awareness,
		mk("PlanPublished", byName["ContainmentPlanning"],
			&cmi.ActivitySource{Av: "PublishPlan", New: []cmi.State{cmi.Completed}},
			cmi.OrgRole("CrisisLeader"),
			"The containment plan has been published"),
		mk("BriefingHeld", byName["MediaResponse"],
			&cmi.SeqNode{Copy: 2, Inputs: []cmi.Node{
				&cmi.ActivitySource{Av: "BriefSpokesperson", New: []cmi.State{cmi.Completed}},
				&cmi.ActivitySource{Av: "HoldBriefing", New: []cmi.State{cmi.Completed}},
			}},
			cmi.OrgRole("CrisisLeader"),
			"The press briefing has been held"),
		mk("AllocationStalled", byName["ResourceAllocation"],
			&cmi.Compare1Node{Op: ">=", Operand: 3, Input: &cmi.CountNode{
				Input: &cmi.ActivitySource{Av: "AllocateStock", New: []cmi.State{cmi.Suspended}},
			}},
			cmi.OrgRole("CrisisLeader"),
			"Stock allocation has been suspended three times"),
		mk("TeamsReady", byName["FieldDeployment"],
			&cmi.AndNode{Copy: 1, Inputs: []cmi.Node{
				&cmi.ActivitySource{Av: "EstablishBase", New: []cmi.State{cmi.Completed}},
				&cmi.ActivitySource{Av: "ReportReadiness", New: []cmi.State{cmi.Completed}},
			}},
			cmi.OrgRole("CrisisLeader"),
			"Field teams are established and ready"),
		mk("ThreatEscalated", byName["IntelFusion"],
			&cmi.ContextSource{Context: "ResponseStatusContext", Field: "Escalated"},
			cmi.ScopedRole("ResponseStatusContext", "Owner"),
			"The threat assessment has been escalated"),
	)

	// Thirty basic activity scripts: six context-management operations
	// over five context schemas.
	ctxSchemas := []*cmi.ResourceSchema{
		TaskForceContextSchema(),
		InfoRequestContextSchema(),
		statusCtx,
		{Name: "LogisticsContext", Kind: cmi.ContextResource, Fields: []cmi.FieldDef{
			{Name: "Coordinator", Type: cmi.FieldRole},
			{Name: "Depot", Type: cmi.FieldString},
			{Name: "Stock", Type: cmi.FieldInt},
		}},
		{Name: "LiaisonContext", Kind: cmi.ContextResource, Fields: []cmi.FieldDef{
			{Name: "Liaison", Type: cmi.FieldRole},
			{Name: "Agency", Type: cmi.FieldString},
			{Name: "Active", Type: cmi.FieldBool},
		}},
	}
	ops := []string{"create", "assign-role", "set-status", "advance", "clear", "retire"}
	for _, cs := range ctxSchemas {
		cs := cs
		for _, op := range ops {
			op := op
			d.Scripts = append(d.Scripts, Script{
				Name:  fmt.Sprintf("%s.%s", cs.Name, op),
				Apply: makeScript(cs, op),
			})
		}
	}
	return d, nil
}

// makeScript builds the context-management effect for one (schema, op)
// pair. Every script creates or manipulates a live context through the
// CORE engine, so running all thirty exercises the same code paths the
// DARPA demonstration's activity scripts did.
func makeScript(cs *cmi.ResourceSchema, op string) func(*cmi.System) error {
	return func(sys *cmi.System) error {
		reg := sys.Contexts()
		// Each script operates on the most recent live context of its
		// schema, creating one when needed.
		ctxs := reg.ByName(cs.Name)
		var id string
		if len(ctxs) == 0 || op == "create" {
			c, err := reg.Create(cs)
			if err != nil {
				return err
			}
			id = c.ID()
		} else {
			id = ctxs[len(ctxs)-1].ID()
		}
		switch op {
		case "create":
			return nil
		case "assign-role":
			for _, f := range cs.Fields {
				if f.Type == cmi.FieldRole {
					return reg.SetField(id, f.Name, core.NewRoleValue("leader"))
				}
			}
		case "set-status":
			for _, f := range cs.Fields {
				if f.Type == cmi.FieldString {
					return reg.SetField(id, f.Name, "active")
				}
			}
		case "advance":
			for _, f := range cs.Fields {
				switch f.Type {
				case cmi.FieldInt:
					return reg.SetField(id, f.Name, 1)
				case cmi.FieldBool:
					return reg.SetField(id, f.Name, true)
				case cmi.FieldTime:
					return reg.SetField(id, f.Name, sys.Clock().Now())
				}
			}
		case "clear":
			return reg.SetField(id, cs.Fields[0].Name, nil)
		case "retire":
			return reg.Retire(id)
		}
		return nil
	}
}

// Install registers every process schema and awareness specification.
func (d *Deployment) Install(sys *cmi.System) error {
	for _, p := range d.Processes {
		if err := sys.RegisterProcess(p); err != nil {
			return err
		}
	}
	return sys.DefineAwareness(d.Awareness...)
}

// RunScripts executes the thirty context-management scripts.
func (d *Deployment) RunScripts(sys *cmi.System) error {
	for _, s := range d.Scripts {
		if err := s.Apply(sys); err != nil {
			return fmt.Errorf("crisis: script %s: %w", s.Name, err)
		}
	}
	return nil
}

// Inventory measures the deployment, including the CMM -> WfMS
// translation expansion.
func (d *Deployment) Inventory() (Inventory, error) {
	inv := Inventory{
		Processes:      len(d.Processes),
		AwarenessSpecs: len(d.Awareness),
		Scripts:        len(d.Scripts),
	}
	seen := map[string]bool{}
	for _, p := range d.Processes {
		if seen[p.Name] {
			continue
		}
		rep, err := wfms.Report(p, wfms.TranslateOptions{RepeatWidth: 2})
		if err != nil {
			return inv, err
		}
		// Avoid double counting shared subprocess schemas.
		inv.CMMActivities += countNew(p, seen)
		inv.WfMSActivities += wfmsNew(p, seen, rep)
		markSeen(p, seen)
	}
	if inv.CMMActivities > 0 {
		inv.Expansion = float64(inv.WfMSActivities) / float64(inv.CMMActivities)
	}
	return inv, nil
}

// countNew counts CMM activities of p not attributed to already-seen
// schemas.
func countNew(p *cmi.ProcessSchema, seen map[string]bool) int {
	if seen[p.Name] {
		return 0
	}
	n := 0
	local := map[string]bool{p.Name: true}
	var walk func(q *cmi.ProcessSchema)
	walk = func(q *cmi.ProcessSchema) {
		for _, av := range q.Activities {
			n++
			if sub, ok := av.Schema.(*cmi.ProcessSchema); ok && !seen[sub.Name] && !local[sub.Name] {
				local[sub.Name] = true
				walk(sub)
			}
		}
	}
	walk(p)
	return n
}

// wfmsNew sums translated definition sizes for schemas not yet seen.
func wfmsNew(p *cmi.ProcessSchema, seen map[string]bool, rep wfms.ExpansionReport) int {
	// Re-translate and count only the new definitions.
	defs, err := wfms.Translate(p, wfms.TranslateOptions{RepeatWidth: 2})
	if err != nil {
		return 0
	}
	n := 0
	for _, def := range defs {
		if !seen[def.Name] {
			n += len(def.Nodes)
		}
	}
	return n
}

func markSeen(p *cmi.ProcessSchema, seen map[string]bool) {
	seen[p.Name] = true
	for _, av := range p.Activities {
		if sub, ok := av.Schema.(*cmi.ProcessSchema); ok && !seen[sub.Name] {
			markSeen(sub, seen)
		}
	}
}

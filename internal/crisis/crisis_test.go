package crisis

import (
	"testing"
	"time"

	cmi "github.com/mcc-cmi/cmi"
)

func TestModelValidatesAndInstalls(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InformationGathering.Validate(); err != nil {
		t.Fatal(err)
	}
	// The three mandatory task forces plus media all invoke the same
	// TaskForce schema.
	if len(m.InformationGathering.Subprocesses()) != 4 {
		t.Fatalf("subprocesses = %d", len(m.InformationGathering.Subprocesses()))
	}
	sys, err := cmi.New(cmi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := m.Install(sys); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
}

func TestSeedStaff(t *testing.T) {
	sys, err := cmi.New(cmi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	st, err := SeedStaff(sys, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Epidemiologists) != 5 || len(st.LabTechs) != 2 {
		t.Fatalf("staff = %+v", st)
	}
	got, err := sys.Directory().ResolveOrg("Epidemiologist")
	if err != nil || len(got) != 5 {
		t.Fatalf("epidemiologists = %v, %v", got, err)
	}
}

// TestFigure1Shape pins the regenerated Figure 1's qualitative shape:
// the process brackets every activity, the three mandatory task forces
// are staggered, the three lab tests overlap the middle of the process,
// and optional activities appear.
func TestFigure1Shape(t *testing.T) {
	res, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 20 {
		t.Fatalf("rows = %d, want a rich timeline", len(res.Rows))
	}
	byLabel := map[string][]TimelineRow{}
	for _, r := range res.Rows {
		byLabel[r.Label] = append(byLabel[r.Label], r)
		if r.Start.Before(res.ProcessStart) || r.End.After(res.ProcessEnd) {
			t.Fatalf("row %q outside process bracket", r.Label)
		}
		if r.End.Before(r.Start) {
			t.Fatalf("row %q ends before it starts", r.Label)
		}
	}
	// The always-required activities appear exactly once.
	for _, label := range []string{"ReceiveReports", "AssessSituation", "DevelopStrategy",
		"PatientInterviews", "HospitalRelations", "VectorOfTransmission"} {
		if len(byLabel[label]) != 1 {
			t.Fatalf("%s appears %d times", label, len(byLabel[label]))
		}
	}
	// Figure 1 shows three lab tests and repeated local expertise.
	if len(byLabel["LabTest"]) != 3 {
		t.Fatalf("lab tests = %d, want 3", len(byLabel["LabTest"]))
	}
	if len(byLabel["LocalExpertise"]) != 2 {
		t.Fatalf("local expertise = %d, want 2", len(byLabel["LocalExpertise"]))
	}
	if len(byLabel["MediaTaskForce"]) != 1 {
		t.Fatalf("media task force = %d", len(byLabel["MediaTaskForce"]))
	}
	// Task forces are staggered: patient interviews start before
	// hospital relations, which start before vector of transmission.
	pi := byLabel["PatientInterviews"][0]
	hr := byLabel["HospitalRelations"][0]
	vt := byLabel["VectorOfTransmission"][0]
	if !pi.Start.Before(hr.Start) || !hr.Start.Before(vt.Start) {
		t.Fatal("task forces not staggered")
	}
	// Strategy development is last and ends the process.
	ds := byLabel["DevelopStrategy"][0]
	if !ds.End.Equal(res.ProcessEnd) {
		t.Fatalf("strategy end %v != process end %v", ds.End, res.ProcessEnd)
	}
	// The crisis leader was notified of each mandatory task force's
	// findings (FindingsReported awareness schema).
	if res.Notifications["leader"] != 3 {
		t.Fatalf("leader notifications = %d, want 3", res.Notifications["leader"])
	}
	// Determinism: a second run is identical.
	res2, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != len(res.Rows) || res2.Events != res.Events {
		t.Fatal("Figure 1 scenario not deterministic")
	}
	for i := range res.Rows {
		if res.Rows[i] != res2.Rows[i] {
			t.Fatalf("row %d differs between runs", i)
		}
	}
}

// TestOverloadShape pins the E7 claim: CMI delivers exactly the relevant
// information (precision = recall = 1), content-filtered pub/sub finds
// everything but drowns it (recall 1, precision well below 1), and the
// WfMS monitoring baseline floods participants with raw events carrying
// none of the composite information.
func TestOverloadShape(t *testing.T) {
	res, err := RunOverload(DefaultOverloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Relevant == 0 {
		t.Fatal("scenario produced no ground truth")
	}
	if p := res.CMI.Precision(); p != 1.0 {
		t.Fatalf("CMI precision = %v", p)
	}
	if r := res.CMI.Recall(res.Relevant); r != 1.0 {
		t.Fatalf("CMI recall = %v", r)
	}
	if r := res.PubSub.Recall(res.Relevant); r != 1.0 {
		t.Fatalf("pubsub recall = %v", r)
	}
	if p := res.PubSub.Precision(); p >= 1.0 || p <= 0 {
		t.Fatalf("pubsub precision = %v, want strictly between 0 and 1", p)
	}
	if res.Monitor.Covered != 0 {
		t.Fatalf("monitor covered = %d, raw activity events cannot express violations", res.Monitor.Covered)
	}
	if res.Monitor.Delivered <= res.CMI.Delivered*5 {
		t.Fatalf("monitor delivered %d vs CMI %d: overload factor too small",
			res.Monitor.Delivered, res.CMI.Delivered)
	}
}

// TestOverloadScaling: the monitor baseline's overload grows with scale
// while CMI stays proportional to the relevant information.
func TestOverloadScaling(t *testing.T) {
	small := DefaultOverloadConfig()
	big := small
	big.TaskForces = 8
	resS, err := RunOverload(small)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := RunOverload(big)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Relevant <= resS.Relevant {
		t.Fatal("ground truth did not grow")
	}
	if resB.CMI.Delivered != resB.Relevant {
		t.Fatalf("CMI delivered %d != relevant %d at scale", resB.CMI.Delivered, resB.Relevant)
	}
	overloadS := float64(resS.Monitor.Delivered) / float64(resS.Relevant)
	overloadB := float64(resB.Monitor.Delivered) / float64(resB.Relevant)
	if overloadB < overloadS {
		t.Fatalf("monitor overload shrank with scale: %.1f -> %.1f", overloadS, overloadB)
	}
}

func TestOverloadConfigValidation(t *testing.T) {
	if _, err := RunOverload(OverloadConfig{TaskForces: 0, MembersPerForce: 3}); err == nil {
		t.Fatal("zero forces accepted")
	}
	if _, err := RunOverload(OverloadConfig{TaskForces: 1, MembersPerForce: 1}); err == nil {
		t.Fatal("single member accepted")
	}
}

// TestDeploymentMatchesSection7 pins the reported deployment scale.
func TestDeploymentMatchesSection7(t *testing.T) {
	d, err := NewDeployment()
	if err != nil {
		t.Fatal(err)
	}
	inv, err := d.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	if inv.Processes != 9 {
		t.Fatalf("processes = %d, want 9", inv.Processes)
	}
	if inv.CMMActivities <= 50 {
		t.Fatalf("CMM activities = %d, want > 50", inv.CMMActivities)
	}
	if inv.AwarenessSpecs != 8 {
		t.Fatalf("awareness specs = %d, want 8", inv.AwarenessSpecs)
	}
	if inv.Scripts != 30 {
		t.Fatalf("scripts = %d, want 30", inv.Scripts)
	}
	// "a few hundred" WfMS activities.
	if inv.WfMSActivities < 200 || inv.WfMSActivities > 600 {
		t.Fatalf("WfMS activities = %d, want a few hundred", inv.WfMSActivities)
	}
	if inv.Expansion < 3 {
		t.Fatalf("expansion = %.1f, want several-fold", inv.Expansion)
	}
}

func TestDeploymentInstallsAndRuns(t *testing.T) {
	d, err := NewDeployment()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cmi.New(cmi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := d.Install(sys); err != nil {
		t.Fatal(err)
	}
	if _, err := SeedStaff(sys, 4); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.RunScripts(sys); err != nil {
		t.Fatal(err)
	}
	// Every one of the nine processes can be instantiated.
	for _, p := range d.Processes {
		if p.Name == "InfoRequest" {
			continue // requires an input context; started via TaskForce
		}
		if _, err := sys.StartProcess(p.Name, "leader"); err != nil {
			t.Fatalf("start %s: %v", p.Name, err)
		}
	}
	// Drive one response process end to end.
	pi, err := sys.StartProcess("ContainmentPlanning", "leader")
	if err != nil {
		t.Fatal(err)
	}
	stages := []string{"ScopeOutbreak", "ModelSpread", "DraftMeasures", "ReviewMeasures", "ApproveMeasures", "PublishPlan"}
	users := map[bool]string{true: "leader", false: "epi-00"}
	for i, st := range stages {
		id, err := findReady(sys, pi.ID(), st)
		if err != nil {
			t.Fatal(err)
		}
		u := users[i == 0 || i == len(stages)-1]
		if err := sys.Coordination().Start(id, u); err != nil {
			t.Fatal(err)
		}
		if err := sys.Coordination().Complete(id, u); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := sys.Coordination().ProcessState(pi.ID()); st != cmi.Completed {
		t.Fatalf("containment planning = %v", st)
	}
	sys.Drain()
	// The PlanPublished awareness schema notified the crisis leader.
	found := false
	for _, n := range sys.MustViewer("leader") {
		if n.Schema == "PlanPublished" {
			found = true
		}
	}
	if !found {
		t.Fatal("PlanPublished notification missing")
	}
}

func TestContextSchemas(t *testing.T) {
	tf := TaskForceContextSchema()
	if err := tf.Validate(); err != nil {
		t.Fatal(err)
	}
	if f, ok := tf.Field("TaskForceDeadline"); !ok || f.Type != cmi.FieldTime {
		t.Fatalf("TaskForceDeadline = %+v, %v", f, ok)
	}
	ir := InfoRequestContextSchema()
	if f, ok := ir.Field("Requestor"); !ok || f.Type != cmi.FieldRole {
		t.Fatalf("Requestor = %+v, %v", f, ok)
	}
}

func TestTimelineDurationsPositive(t *testing.T) {
	res, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.End.Sub(r.Start) <= 0 {
			t.Fatalf("%s has non-positive duration", r.Label)
		}
		if r.End.Sub(r.Start) > 5*24*time.Hour {
			t.Fatalf("%s is implausibly long: %v", r.Label, r.End.Sub(r.Start))
		}
	}
}

// TestOverloadDeterminism: the E7 experiment is exactly reproducible.
func TestOverloadDeterminism(t *testing.T) {
	a, err := RunOverload(DefaultOverloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOverload(DefaultOverloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("overload runs differ:\n%+v\n%+v", a, b)
	}
}

package crisis

import (
	"fmt"
	"sync"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/event"
	"github.com/mcc-cmi/cmi/internal/monitor"
	"github.com/mcc-cmi/cmi/internal/pubsub"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

// OverloadConfig sizes the E7 information-overload experiment.
type OverloadConfig struct {
	// TaskForces is how many task-force processes run concurrently.
	TaskForces int
	// MembersPerForce is how many epidemiologists staff each force.
	MembersPerForce int
	// RequestsPerForce is how many information requests each force
	// issues (each by a distinct member, round-robin).
	RequestsPerForce int
	// DeadlineMovesPerForce is how many times each force's leader moves
	// the task force deadline. Every second move violates the
	// outstanding requests' deadlines.
	DeadlineMovesPerForce int
	// NoiseActivitiesPerForce adds extra investigate-activity rounds per
	// force: pure enactment noise from the awareness perspective.
	NoiseActivitiesPerForce int
}

// DefaultOverloadConfig is the EXPERIMENTS.md baseline point.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		TaskForces:              4,
		MembersPerForce:         4,
		RequestsPerForce:        2,
		DeadlineMovesPerForce:   4,
		NoiseActivitiesPerForce: 6,
	}
}

// SystemMetrics scores one awareness-provisioning approach against the
// scenario's ground truth.
type SystemMetrics struct {
	// Delivered is the total number of notifications handed to
	// participants.
	Delivered int
	// Hits is how many deliveries were relevant (matched a ground-truth
	// item for that participant).
	Hits int
	// Covered is how many distinct ground-truth items were covered by
	// at least one delivery.
	Covered int
}

// Precision is the fraction of deliveries that were relevant.
func (m SystemMetrics) Precision() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Delivered)
}

// Recall returns the fraction of relevant items covered, given the total.
func (m SystemMetrics) Recall(relevant int) float64 {
	if relevant == 0 {
		return 0
	}
	return float64(m.Covered) / float64(relevant)
}

// OverloadResult is the outcome of one E7 run.
type OverloadResult struct {
	Config       OverloadConfig
	Participants int
	// RawEvents is how many primitive events the scenario emitted.
	RawEvents int
	// Relevant is the size of the ground truth: the number of
	// (participant, violation) pairs that should be known.
	Relevant int
	CMI      SystemMetrics
	PubSub   SystemMetrics
	Monitor  SystemMetrics
}

// groundTruthKey identifies one piece of awareness someone needed: the
// participant and the deadline-violation occurrence (request instance +
// move ordinal).
type groundTruthKey struct {
	participant string
	request     string
	move        int
}

// RunOverload runs the same deterministic crisis scenario through three
// awareness-provisioning approaches at once:
//
//   - CMI customized awareness (the Section 5.4 DeadlineViolation schema,
//     delivered to the scoped Requestor role);
//   - an Elvin-style content-filtered publish/subscribe baseline: every
//     primitive event is published; each requestor subscribes to deadline
//     changes of their own task force's context (the strongest filter
//     content-based subscription can express — it cannot compare two
//     deadlines, so it forwards every move, violating or not);
//   - the built-in WfMS monitoring baseline: workers receive their own
//     activity events, managers (the crisis leader) receive everything.
//
// The scenario's ground truth is the set of (participant, violation)
// pairs; the result scores each approach's delivered volume, precision
// and recall against it.
func RunOverload(cfg OverloadConfig) (*OverloadResult, error) {
	if cfg.TaskForces < 1 || cfg.MembersPerForce < 2 {
		return nil, fmt.Errorf("crisis: overload config needs >=1 force and >=2 members")
	}
	clk := vclock.NewVirtual()
	sys, err := cmi.New(cmi.Config{Clock: clk})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	model, err := NewModel()
	if err != nil {
		return nil, err
	}
	// Register the task force process as a top-level schema and define
	// only the Section 5.4 awareness schema.
	if err := sys.RegisterProcess(model.TaskForce); err != nil {
		return nil, err
	}
	if err := sys.DefineAwareness(model.Awareness[0]); err != nil { // DeadlineViolation
		return nil, err
	}

	nStaff := cfg.TaskForces * cfg.MembersPerForce
	staff, err := SeedStaff(sys, nStaff)
	if err != nil {
		return nil, err
	}

	// --- Baseline wiring ----------------------------------------------

	// WfMS monitoring baseline: all members are workers; the crisis
	// leader manages everything.
	mon := monitor.New(nil)
	for _, m := range staff.Epidemiologists {
		mon.AddWorker(m)
	}
	mon.AddManager(staff.Leader)
	sys.Coordination().Observe(mon)

	// Elvin baseline: publish every primitive event.
	broker := pubsub.NewBroker()
	var psMu sync.Mutex
	psDeliveries := map[string][]pubsub.Notification{}
	var rawEvents int
	publish := event.ConsumerFunc(func(ev event.Event) {
		rawEvents++
		broker.Notify(pubsub.FromEvent(ev))
	})
	sys.Coordination().Observe(publish)
	sys.Contexts().Observe(publish)

	subscribeRequestor := func(member, tfContextID string) error {
		_, err := broker.Subscribe(member, pubsub.All{
			pubsub.Cmp{Field: event.PType, Op: "==", Value: string(event.TypeContext)},
			pubsub.Cmp{Field: event.PContextID, Op: "==", Value: tfContextID},
			pubsub.Cmp{Field: event.PFieldName, Op: "==", Value: "TaskForceDeadline"},
		}, func(n pubsub.Notification) {
			psMu.Lock()
			psDeliveries[member] = append(psDeliveries[member], n)
			psMu.Unlock()
		})
		return err
	}

	if err := sys.Start(); err != nil {
		return nil, err
	}

	// --- Scenario ------------------------------------------------------

	type request struct {
		id        string
		requestor string
		deadline  time.Time
	}
	type force struct {
		id       string
		leader   string
		members  []string
		ctxID    string
		requests []request
	}
	var forces []force
	truth := map[groundTruthKey]bool{}

	t0 := clk.Now()
	horizon := t0.Add(1000 * time.Hour)

	for f := 0; f < cfg.TaskForces; f++ {
		members := staff.Epidemiologists[f*cfg.MembersPerForce : (f+1)*cfg.MembersPerForce]
		pi, err := sys.StartProcess("TaskForce", staff.Leader)
		if err != nil {
			return nil, err
		}
		fo := force{id: pi.ID(), leader: members[0], members: members}
		ctxID, ok := sys.Coordination().ContextID(pi.ID(), "tfc")
		if !ok {
			return nil, fmt.Errorf("crisis: no tfc context")
		}
		fo.ctxID = ctxID
		if err := sys.SetScopedRole(pi.ID(), "tfc", "TaskForceLeader", fo.leader); err != nil {
			return nil, err
		}
		if err := sys.SetScopedRole(pi.ID(), "tfc", "TaskForceMembers", members...); err != nil {
			return nil, err
		}
		if err := sys.SetContextField(pi.ID(), "tfc", "TaskForceDeadline", horizon); err != nil {
			return nil, err
		}
		if err := drive(sys, pi.ID(), "Organize", staff.Leader, clk, time.Hour); err != nil {
			return nil, err
		}
		// Issue the information requests.
		for r := 0; r < cfg.RequestsPerForce; r++ {
			requestor := members[r%len(members)]
			var reqID string
			if r == 0 {
				ai, err := findReady(sys, pi.ID(), "RequestInfo")
				if err != nil {
					return nil, err
				}
				reqID = ai
			} else {
				info, err := sys.Coordination().Instantiate(pi.ID(), "RequestInfo", staff.Leader)
				if err != nil {
					return nil, err
				}
				reqID = info.ID
			}
			if err := sys.Coordination().Start(reqID, staff.Leader); err != nil {
				return nil, err
			}
			if err := sys.SetScopedRole(reqID, "irc", "Requestor", requestor); err != nil {
				return nil, err
			}
			deadline := clk.Now().Add(time.Duration(100+10*r) * time.Hour)
			if err := sys.SetContextField(reqID, "irc", "RequestDeadline", deadline); err != nil {
				return nil, err
			}
			fo.requests = append(fo.requests, request{id: reqID, requestor: requestor, deadline: deadline})
			if err := subscribeRequestor(requestor, ctxID); err != nil {
				return nil, err
			}
			clk.Advance(time.Hour)
		}
		// Noise: investigation rounds, pure enactment events.
		for n := 0; n < cfg.NoiseActivitiesPerForce; n++ {
			member := members[n%len(members)]
			var actID string
			ai, err := findReady(sys, pi.ID(), "Investigate")
			if err == nil {
				actID = ai
			} else {
				info, err := sys.Coordination().Instantiate(pi.ID(), "Investigate", member)
				if err != nil {
					return nil, err
				}
				actID = info.ID
			}
			if err := sys.Coordination().Start(actID, member); err != nil {
				return nil, err
			}
			clk.Advance(30 * time.Minute)
			if err := sys.Coordination().Complete(actID, member); err != nil {
				return nil, err
			}
		}
		forces = append(forces, fo)
	}

	// Deadline moves: every second move lands before the outstanding
	// request deadlines (a violation); the others move it far out.
	for mv := 0; mv < cfg.DeadlineMovesPerForce; mv++ {
		for fi := range forces {
			fo := &forces[fi]
			var newDeadline time.Time
			violates := mv%2 == 1
			if violates {
				// Anchored to scenario start: request deadlines all lie
				// at least 100h after their creation, so a value near t0
				// violates every outstanding request regardless of how
				// long the setup phase ran.
				newDeadline = t0.Add(time.Duration(mv+1) * time.Minute)
			} else {
				newDeadline = horizon.Add(time.Duration(mv) * time.Hour)
			}
			if err := sys.Contexts().SetField(fo.ctxID, "TaskForceDeadline", newDeadline); err != nil {
				return nil, err
			}
			if violates {
				for _, rq := range fo.requests {
					truth[groundTruthKey{rq.requestor, rq.id, mv}] = true
				}
			}
			clk.Advance(15 * time.Minute)
		}
	}
	sys.Drain()

	// --- Scoring --------------------------------------------------------

	res := &OverloadResult{
		Config:       cfg,
		Participants: nStaff + 1,
		RawEvents:    rawEvents,
		Relevant:     len(truth),
	}

	// CMI: notifications are exact (schema + request instance).
	coveredCMI := map[groundTruthKey]bool{}
	parts, err := sys.Store().Participants()
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		hist, err := sys.Store().History(p)
		if err != nil {
			return nil, err
		}
		res.CMI.Delivered += len(hist)
		seq := 0
		for _, n := range hist {
			if n.Schema != "DeadlineViolation" {
				continue
			}
			reqID, _ := n.Params[event.PProcessInstanceID].(string)
			// Match this delivery to the next uncovered violation move
			// for this (participant, request).
			for mv := 0; mv < cfg.DeadlineMovesPerForce; mv++ {
				k := groundTruthKey{p, reqID, mv}
				if truth[k] && !coveredCMI[k] {
					coveredCMI[k] = true
					res.CMI.Hits++
					break
				}
			}
			seq++
		}
	}
	res.CMI.Covered = len(coveredCMI)

	// PubSub: a delivery is a hit when the delivered deadline value
	// actually violates one of the member's request deadlines.
	coveredPS := map[groundTruthKey]bool{}
	psMu.Lock()
	for member, notes := range psDeliveries {
		res.PubSub.Delivered += len(notes)
		for _, n := range notes {
			newVal, ok := n[event.PNewFieldValue].(time.Time)
			if !ok {
				continue
			}
			hit := false
			for fi := range forces {
				for _, rq := range forces[fi].requests {
					if rq.requestor != member {
						continue
					}
					if !newVal.After(rq.deadline) { // tfDeadline <= requestDeadline
						hit = true
						for mv := 0; mv < cfg.DeadlineMovesPerForce; mv++ {
							k := groundTruthKey{member, rq.id, mv}
							if truth[k] && !coveredPS[k] {
								coveredPS[k] = true
								break
							}
						}
					}
				}
			}
			if hit {
				res.PubSub.Hits++
			}
		}
	}
	psMu.Unlock()
	res.PubSub.Covered = len(coveredPS)

	// Monitor baseline: raw activity events never express a deadline
	// violation, so hits and coverage are zero by construction; what it
	// shows is the delivered volume.
	for _, c := range mon.Counts() {
		res.Monitor.Delivered += int(c)
	}
	return res, nil
}

func findReady(sys *cmi.System, processID, varName string) (string, error) {
	for _, ai := range sys.Coordination().ActivitiesOf(processID) {
		if ai.Var == varName && ai.State == cmi.Ready {
			return ai.ID, nil
		}
	}
	return "", fmt.Errorf("crisis: no ready %q in %s", varName, processID)
}

func drive(sys *cmi.System, processID, varName, user string, clk *vclock.Virtual, dur time.Duration) error {
	id, err := findReady(sys, processID, varName)
	if err != nil {
		return err
	}
	if err := sys.Coordination().Start(id, user); err != nil {
		return err
	}
	clk.Advance(dur)
	return sys.Coordination().Complete(id, user)
}

// Package crisis builds the crisis-management workloads the paper
// motivates CMI with (Sections 1-2): the epidemic-response information
// gathering process of Figure 1, dynamically composed task forces with
// scoped roles, information request subprocesses with deadlines (the
// Section 5.4 running example), and the DARPA-deployment-scale model
// summarized in Section 7.
//
// The generators are deterministic: driven by a virtual clock and fixed
// orderings, so every experiment in EXPERIMENTS.md reproduces exactly.
package crisis

import (
	"fmt"

	cmi "github.com/mcc-cmi/cmi"
)

// Model holds the crisis process and awareness schemas.
type Model struct {
	// InformationGathering is the Figure 1 top-level process.
	InformationGathering *cmi.ProcessSchema
	// TaskForce is the dynamically instantiated task force subprocess.
	TaskForce *cmi.ProcessSchema
	// InfoRequest is the Section 5.4 information request subprocess.
	InfoRequest *cmi.ProcessSchema
	// Awareness lists the model's awareness schemas.
	Awareness []*cmi.AwarenessSchema
}

// TaskForceContextSchema returns the TaskForceContext resource schema of
// Section 5.4.
func TaskForceContextSchema() *cmi.ResourceSchema {
	return &cmi.ResourceSchema{
		Name: "TaskForceContext",
		Kind: cmi.ContextResource,
		Fields: []cmi.FieldDef{
			{Name: "TaskForceMembers", Type: cmi.FieldRole},
			{Name: "TaskForceLeader", Type: cmi.FieldRole},
			{Name: "TaskForceDeadline", Type: cmi.FieldTime},
			{Name: "Region", Type: cmi.FieldString},
			{Name: "LabPositive", Type: cmi.FieldBool},
		},
	}
}

// InfoRequestContextSchema returns the InfoRequestContext resource
// schema of Section 5.4.
func InfoRequestContextSchema() *cmi.ResourceSchema {
	return &cmi.ResourceSchema{
		Name: "InfoRequestContext",
		Kind: cmi.ContextResource,
		Fields: []cmi.FieldDef{
			{Name: "Requestor", Type: cmi.FieldRole},
			{Name: "RequestDeadline", Type: cmi.FieldTime},
			{Name: "Topic", Type: cmi.FieldString},
		},
	}
}

func basic(name string, role cmi.RoleRef) *cmi.BasicActivitySchema {
	return &cmi.BasicActivitySchema{Name: name, PerformerRole: role}
}

// NewModel builds the epidemic-response model.
//
// The information gathering process follows Figure 1: it starts when the
// health agency becomes aware of the outbreak, always assesses the
// situation, then dynamically creates task forces (patient interviews,
// hospital relations, vector of transmission, media — the last optional),
// issues repeated lab tests, optionally brings in local expertise, and
// ends when a containment strategy has been developed.
func NewModel() (*Model, error) {
	tfCtx := TaskForceContextSchema()
	irCtx := InfoRequestContextSchema()

	epi := cmi.OrgRole("Epidemiologist")
	leaderRole := cmi.OrgRole("CrisisLeader")
	labRole := cmi.OrgRole("LabTechnician")
	tfLeader := cmi.ScopedRole("TaskForceContext", "TaskForceLeader")

	infoRequest := &cmi.ProcessSchema{
		Name: "InfoRequest",
		ResourceVars: []cmi.ResourceVariable{
			{Name: "irc", Usage: cmi.UsageLocal, Schema: irCtx},
			{Name: "tfc", Usage: cmi.UsageInput, Schema: tfCtx},
		},
		Activities: []cmi.ActivityVariable{
			{Name: "Gather", Schema: basic("GatherInformation", epi)},
			{Name: "Integrate", Schema: basic("IntegrateInformation", epi)},
		},
		Dependencies: []cmi.Dependency{
			{Type: cmi.DepSequence, Sources: []string{"Gather"}, Target: "Integrate"},
		},
	}

	taskForce := &cmi.ProcessSchema{
		Name: "TaskForce",
		ResourceVars: []cmi.ResourceVariable{
			{Name: "tfc", Usage: cmi.UsageLocal, Schema: tfCtx},
		},
		Activities: []cmi.ActivityVariable{
			{Name: "Organize", Schema: basic("OrganizeTaskForce", leaderRole)},
			{Name: "Investigate", Schema: basic("Investigate", epi), Repeatable: true},
			{Name: "RequestInfo", Schema: infoRequest, Optional: true, Repeatable: true,
				Bind: map[string]string{"tfc": "tfc"}},
			{Name: "ReportFindings", Schema: basic("ReportFindings", tfLeader)},
		},
		Dependencies: []cmi.Dependency{
			{Type: cmi.DepSequence, Sources: []string{"Organize"}, Target: "Investigate"},
			{Type: cmi.DepSequence, Sources: []string{"Organize"}, Target: "RequestInfo"},
			{Type: cmi.DepSequence, Sources: []string{"Investigate"}, Target: "ReportFindings"},
		},
	}

	infoGathering := &cmi.ProcessSchema{
		Name: "InformationGathering",
		ResourceVars: []cmi.ResourceVariable{
			{Name: "igc", Usage: cmi.UsageLocal, Schema: &cmi.ResourceSchema{
				Name: "InfoGatheringContext",
				Kind: cmi.ContextResource,
				Fields: []cmi.FieldDef{
					{Name: "OutbreakRegion", Type: cmi.FieldString},
					{Name: "Contained", Type: cmi.FieldBool},
				},
			}},
		},
		Activities: []cmi.ActivityVariable{
			{Name: "ReceiveReports", Schema: basic("ReceiveDiseaseReports", leaderRole)},
			{Name: "AssessSituation", Schema: basic("AssessSituation", leaderRole)},
			{Name: "PatientInterviews", Schema: taskForce, Repeatable: true},
			{Name: "HospitalRelations", Schema: taskForce, Repeatable: true},
			{Name: "VectorOfTransmission", Schema: taskForce, Repeatable: true},
			{Name: "MediaTaskForce", Schema: taskForce, Optional: true, Repeatable: true},
			{Name: "LabTest", Schema: basic("RunLabTest", labRole), Optional: true, Repeatable: true},
			{Name: "LocalExpertise", Schema: basic("ConsultLocalExpertise", epi), Optional: true, Repeatable: true},
			{Name: "DevelopStrategy", Schema: basic("DevelopContainmentStrategy", leaderRole)},
		},
		// Only ReceiveReports runs at process start; everything else is
		// enabled by dependencies or instantiated dynamically as the
		// crisis unfolds (Figure 1's optional, staggered activities).
		Entry: []string{"ReceiveReports"},
		Dependencies: []cmi.Dependency{
			{Type: cmi.DepSequence, Sources: []string{"ReceiveReports"}, Target: "AssessSituation"},
			{Type: cmi.DepSequence, Sources: []string{"AssessSituation"}, Target: "PatientInterviews"},
			{Type: cmi.DepSequence, Sources: []string{"AssessSituation"}, Target: "HospitalRelations"},
			{Type: cmi.DepSequence, Sources: []string{"AssessSituation"}, Target: "VectorOfTransmission"},
			{Type: cmi.DepAndJoin,
				Sources: []string{"PatientInterviews", "HospitalRelations", "VectorOfTransmission"},
				Target:  "DevelopStrategy"},
		},
	}

	if err := infoGathering.Validate(); err != nil {
		return nil, fmt.Errorf("crisis: %w", err)
	}

	m := &Model{
		InformationGathering: infoGathering,
		TaskForce:            taskForce,
		InfoRequest:          infoRequest,
	}
	m.Awareness = []*cmi.AwarenessSchema{
		// AS_InfoRequest from Section 5.4: notify the requestor when the
		// task force deadline moves earlier than the request deadline.
		{
			Name:    "DeadlineViolation",
			Process: infoRequest,
			Description: &cmi.Compare2Node{
				Op: "<=",
				Inputs: [2]cmi.Node{
					&cmi.ContextSource{Context: "TaskForceContext", Field: "TaskForceDeadline"},
					&cmi.ContextSource{Context: "InfoRequestContext", Field: "RequestDeadline"},
				},
			},
			DeliveryRole: cmi.ScopedRole("InfoRequestContext", "Requestor"),
			Assignment:   cmi.AssignIdentity,
			Text:         "Task force deadline moved earlier than the information request deadline",
		},
		// Notify the task force leader when a lab result comes back
		// positive (Section 2's "notify the test requestor ... when a
		// positive result is found").
		{
			Name:    "LabPositive",
			Process: taskForce,
			Description: &cmi.ContextSource{
				Context: "TaskForceContext", Field: "LabPositive",
			},
			DeliveryRole: cmi.ScopedRole("TaskForceContext", "TaskForceLeader"),
			Assignment:   cmi.AssignIdentity,
			Text:         "A lab test relevant to your task force returned a result",
		},
		// Notify the crisis leader when any task force delivers its
		// findings (a Translate across the invocation).
		{
			Name:    "FindingsReported",
			Process: infoGathering,
			Description: &cmi.OrNode{Inputs: []cmi.Node{
				&cmi.TranslateNode{Av: "PatientInterviews", Input: findingsDone()},
				&cmi.TranslateNode{Av: "HospitalRelations", Input: findingsDone()},
				&cmi.TranslateNode{Av: "VectorOfTransmission", Input: findingsDone()},
			}},
			DeliveryRole: cmi.OrgRole("CrisisLeader"),
			Assignment:   cmi.AssignIdentity,
			Text:         "A task force reported its findings",
		},
	}
	return m, nil
}

func findingsDone() cmi.Node {
	return &cmi.ActivitySource{Av: "ReportFindings", New: []cmi.State{cmi.Completed}}
}

// Install registers the model's process schemas and awareness schemas
// into a system. Call before sys.Start.
func (m *Model) Install(sys *cmi.System) error {
	if err := sys.RegisterProcess(m.InformationGathering); err != nil {
		return err
	}
	return sys.DefineAwareness(m.Awareness...)
}

// Staff describes the personnel of a scenario.
type Staff struct {
	Leader          string
	Epidemiologists []string
	LabTechs        []string
}

// SeedStaff registers a crisis leader, n epidemiologists and two lab
// technicians, with organizational roles assigned.
func SeedStaff(sys *cmi.System, n int) (Staff, error) {
	st := Staff{Leader: "leader"}
	if err := sys.AddHuman("leader", "Crisis Leader"); err != nil {
		return st, err
	}
	if err := sys.AssignRole("CrisisLeader", "leader"); err != nil {
		return st, err
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("epi-%02d", i)
		if err := sys.AddHuman(id, fmt.Sprintf("Epidemiologist %d", i)); err != nil {
			return st, err
		}
		if err := sys.AssignRole("Epidemiologist", id); err != nil {
			return st, err
		}
		st.Epidemiologists = append(st.Epidemiologists, id)
	}
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("lab-%02d", i)
		if err := sys.AddHuman(id, fmt.Sprintf("Lab Technician %d", i)); err != nil {
			return st, err
		}
		if err := sys.AssignRole("LabTechnician", id); err != nil {
			return st, err
		}
		st.LabTechs = append(st.LabTechs, id)
	}
	return st, nil
}

package crisis

import (
	"errors"
	"path/filepath"
	"testing"

	"github.com/mcc-cmi/cmi/internal/event"
	"github.com/mcc-cmi/cmi/internal/fs"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

// TestJournalSinkFsyncFailurePoisons is the regression test for the
// sink that used to ignore its fsync result: the first failed sync must
// poison the sink — the event is not counted as journaled, Err surfaces
// the failure, and later events are dropped instead of retrying the
// descriptor.
func TestJournalSinkFsyncFailurePoisons(t *testing.T) {
	ff := fs.NewFault(nil, fs.FaultConfig{FailSyncAt: 1})
	j, err := NewJournalSinkFS(filepath.Join(t.TempDir(), "detections.log"), ff)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	clk := vclock.NewVirtual()
	evs := IngestEvents(clk, 1, 3)

	j.Consume(evs[0])
	if got := j.Count(); got != 0 {
		t.Fatalf("Count = %d after failed fsync, want 0 (the record is not durable)", got)
	}
	if err := j.Err(); !errors.Is(err, fs.ErrInjected) {
		t.Fatalf("Err = %v, want the injected sync failure", err)
	}
	// The fault was one-shot — a retry would falsely succeed. The sink
	// must stay poisoned and keep refusing events.
	j.Consume(evs[1])
	j.Consume(evs[2])
	if got := j.Count(); got != 0 {
		t.Fatalf("Count = %d after poisoning, want 0", got)
	}
	if err := j.Err(); err == nil {
		t.Fatal("poison cleared by later events")
	}
}

// TestJournalSinkHealthy pins the counting contract on the happy path.
func TestJournalSinkHealthy(t *testing.T) {
	j, err := NewJournalSink(filepath.Join(t.TempDir(), "detections.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, ev := range IngestEvents(vclock.NewVirtual(), 2, 2) {
		j.Consume(ev)
	}
	if got := j.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
}

var _ event.Consumer = (*JournalSink)(nil)

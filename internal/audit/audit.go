// Package audit records the primitive enactment event stream to a
// durable journal and answers queries over it — the process monitoring
// log that Section 2's critique of WfMS awareness presupposes: "unless
// WfMS users are willing to develop specialized awareness applications
// that analyze process monitoring logs, their awareness choices are
// limited". This package is that log (and its query API in the spirit of
// the WfMC monitoring interface the paper cites), so the repository
// carries both sides of the comparison: after-the-fact log analysis here
// versus CMI's live customized awareness in package awareness.
package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/mcc-cmi/cmi/internal/event"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

// A Record is one journaled event in JSON form.
type Record struct {
	Seq    uint64         `json:"seq"`
	Time   time.Time      `json:"time"`
	Type   string         `json:"type"`
	Source string         `json:"source"`
	Params map[string]any `json:"params,omitempty"`
}

// A Recorder journals events to an append-only JSON-lines file. Register
// it as an observer of the coordination engine and the context registry.
// It is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	file   *os.File
	w      *bufio.Writer
	count  uint64
	errCnt uint64
	closed bool
}

// NewRecorder opens (appending to) the journal at path.
func NewRecorder(path string) (*Recorder, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	return &Recorder{file: f, w: bufio.NewWriter(f)}, nil
}

// Consume implements event.Consumer.
func (r *Recorder) Consume(ev event.Event) {
	rec := Record{
		Seq:    ev.Stamp.Seq,
		Time:   ev.Stamp.Time,
		Type:   string(ev.Type),
		Source: ev.Source,
		Params: sanitize(ev.Params),
	}
	b, err := json.Marshal(rec)
	if err != nil {
		r.countErr()
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if _, err := r.w.Write(append(b, '\n')); err != nil {
		r.errCnt++
		return
	}
	if err := r.w.Flush(); err != nil {
		r.errCnt++
		return
	}
	r.count++
}

func (r *Recorder) countErr() {
	r.mu.Lock()
	r.errCnt++
	r.mu.Unlock()
}

// Stats returns the number of recorded events and write failures.
func (r *Recorder) Stats() (recorded, failed uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count, r.errCnt
}

// Close flushes and closes the journal. Idempotent.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if err := r.w.Flush(); err != nil {
		r.file.Close()
		return fmt.Errorf("audit: %w", err)
	}
	if err := r.file.Close(); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	return nil
}

// sanitize mirrors the delivery store's parameter flattening.
func sanitize(p event.Params) map[string]any {
	out := make(map[string]any, len(p))
	for k, v := range p {
		switch x := v.(type) {
		case nil, string, bool:
			out[k] = v
		case time.Time:
			out[k] = x.Format(time.RFC3339Nano)
		case []event.ProcessRef:
			refs := make([]string, len(x))
			for i, r := range x {
				refs[i] = r.String()
			}
			out[k] = refs
		default:
			if i, ok := event.AsInt64(v); ok {
				out[k] = i
			} else {
				out[k] = fmt.Sprint(v)
			}
		}
	}
	return out
}

// A Query filters journal records. Zero fields match everything.
type Query struct {
	// Type restricts to one event type.
	Type string
	// ProcessInstance matches records whose parameters reference the
	// process instance id (as parent, activity or canonical instance).
	ProcessInstance string
	// Participant matches records whose user parameter names them.
	Participant string
	// After/Before bound the record time (inclusive/exclusive).
	After  time.Time
	Before time.Time
}

func (q Query) matches(rec Record) bool {
	if q.Type != "" && rec.Type != q.Type {
		return false
	}
	if q.Participant != "" && rec.Params[event.PUser] != q.Participant {
		return false
	}
	if !q.After.IsZero() && rec.Time.Before(q.After) {
		return false
	}
	if !q.Before.IsZero() && !rec.Time.Before(q.Before) {
		return false
	}
	if q.ProcessInstance != "" {
		if !recordMentionsInstance(rec, q.ProcessInstance) {
			return false
		}
	}
	return true
}

func recordMentionsInstance(rec Record, inst string) bool {
	for _, key := range []string{
		event.PParentProcessInstanceID,
		event.PActivityInstanceID,
		event.PProcessInstanceID,
	} {
		if rec.Params[key] == inst {
			return true
		}
	}
	if refs, ok := rec.Params[event.PProcesses].([]any); ok {
		for _, r := range refs {
			if s, ok := r.(string); ok && len(s) > len(inst) && s[len(s)-len(inst):] == inst {
				return true
			}
		}
	}
	return false
}

// Read scans the journal at path and returns the records matching the
// query, in journal order. Torn trailing lines are tolerated.
func Read(path string, q Query) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue
		}
		if q.matches(rec) {
			out = append(out, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	return out, nil
}

// Replay re-injects the matching journal records as events into a
// consumer — the "specialized awareness application analyzing process
// monitoring logs" path. The journal stores parameters in flattened JSON
// form, so Replay re-hydrates them: RFC3339 strings become time.Time,
// JSON numbers become int64, and the process association list becomes
// []event.ProcessRef again — enough for the awareness operators to run
// over replayed streams exactly as they do live.
func Replay(path string, q Query, into event.Consumer) (int, error) {
	recs, err := Read(path, q)
	if err != nil {
		return 0, err
	}
	for _, rec := range recs {
		params := make(event.Params, len(rec.Params))
		for k, v := range rec.Params {
			params[k] = hydrate(k, v)
		}
		into.Consume(event.Event{
			Type:   event.Type(rec.Type),
			Stamp:  vclock.Stamp{Time: rec.Time, Seq: rec.Seq},
			Source: rec.Source,
			Params: params,
		})
	}
	return len(recs), nil
}

// hydrate undoes the journal's JSON flattening for one parameter.
func hydrate(key string, v any) any {
	switch x := v.(type) {
	case string:
		if t, err := time.Parse(time.RFC3339Nano, x); err == nil {
			return t
		}
		return x
	case float64:
		// JSON numbers decode as float64; the event model uses int64.
		if x == float64(int64(x)) {
			return int64(x)
		}
		return x
	case []any:
		if key == event.PProcesses {
			refs := make([]event.ProcessRef, 0, len(x))
			for _, e := range x {
				if s, ok := e.(string); ok {
					if i := indexByte(s, '/'); i > 0 {
						refs = append(refs, event.ProcessRef{SchemaID: s[:i], InstanceID: s[i+1:]})
					}
				}
			}
			return refs
		}
		return x
	default:
		return v
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

package audit

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/mcc-cmi/cmi/internal/awareness"
	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/event"
	"github.com/mcc-cmi/cmi/internal/system"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

// rig runs a small process with a recorder attached and returns the
// journal path plus the ids involved.
func rig(t *testing.T) (path, procID, actID string) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "audit.jsonl")
	rec, err := NewRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtual()
	sys, err := system.New(system.Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	sys.Coordination().Observe(rec)
	sys.Contexts().Observe(rec)
	p := &core.ProcessSchema{
		Name: "Audited",
		ResourceVars: []core.ResourceVariable{
			{Name: "c", Usage: core.UsageLocal, Schema: &core.ResourceSchema{
				Name: "AuditCtx", Kind: core.ContextResource,
				Fields: []core.FieldDef{{Name: "N", Type: core.FieldInt}},
			}},
		},
		Activities: []core.ActivityVariable{
			{Name: "W", Schema: &core.BasicActivitySchema{Name: "W", PerformerRole: core.OrgRole("R")}},
		},
	}
	if err := sys.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHuman("u", "U"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AssignRole("R", "u"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	pi, err := sys.StartProcess("Audited", "u")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContextField(pi.ID(), "c", "N", 7); err != nil {
		t.Fatal(err)
	}
	var id string
	for _, ai := range sys.Coordination().ActivitiesOf(pi.ID()) {
		id = ai.ID
	}
	if err := sys.Coordination().Start(id, "u"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour)
	if err := sys.Coordination().Complete(id, "u"); err != nil {
		t.Fatal(err)
	}
	recorded, failed := rec.Stats()
	if recorded == 0 || failed != 0 {
		t.Fatalf("recorder stats = %d, %d", recorded, failed)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	return path, pi.ID(), id
}

func TestRecordAndQuery(t *testing.T) {
	path, procID, actID := rig(t)

	all, err := Read(path, Query{})
	if err != nil {
		t.Fatal(err)
	}
	// Process Uninit->Ready->Running, activity Uninit->Ready, context
	// set, start, complete, process complete: 7 records.
	if len(all) != 7 {
		t.Fatalf("records = %d: %v", len(all), all)
	}
	// Journal order is stamp order.
	for i := 1; i < len(all); i++ {
		if all[i-1].Seq >= all[i].Seq {
			t.Fatal("journal out of order")
		}
	}

	// Type filter.
	ctxRecs, err := Read(path, Query{Type: string(event.TypeContext)})
	if err != nil || len(ctxRecs) != 1 {
		t.Fatalf("context records = %v, %v", ctxRecs, err)
	}
	if ctxRecs[0].Params[event.PFieldName] != "N" {
		t.Fatalf("context record = %+v", ctxRecs[0])
	}

	// Participant filter: start and complete carry user=u.
	userRecs, err := Read(path, Query{Participant: "u"})
	if err != nil {
		t.Fatal(err)
	}
	if len(userRecs) < 2 {
		t.Fatalf("user records = %v", userRecs)
	}

	// Process-instance filter matches parent refs, the instance itself
	// and context associations.
	instRecs, err := Read(path, Query{ProcessInstance: procID})
	if err != nil {
		t.Fatal(err)
	}
	if len(instRecs) != len(all) {
		t.Fatalf("instance records = %d, want %d", len(instRecs), len(all))
	}
	actRecs, err := Read(path, Query{ProcessInstance: actID})
	if err != nil {
		t.Fatal(err)
	}
	if len(actRecs) != 4 { // activity Ready, Running, Completed... plus? start/complete/instantiate
		// Exact count depends on the activity's transitions: Uninit->Ready,
		// Ready->Running, Running->Completed.
		if len(actRecs) != 3 {
			t.Fatalf("activity records = %d", len(actRecs))
		}
	}

	// Time window: nothing before the epoch's first instant + nothing
	// at/after an hour in.
	windowed, err := Read(path, Query{After: all[0].Time.Add(time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if len(windowed) == 0 || len(windowed) >= len(all) {
		t.Fatalf("windowed = %d of %d", len(windowed), len(all))
	}
	none, err := Read(path, Query{Before: all[0].Time})
	if err != nil || len(none) != 0 {
		t.Fatalf("before-epoch records = %v", none)
	}
}

// TestReplayFeedsConsumers: the journal replays into an event consumer —
// a monitoring application built after the fact, the Section 2 pattern.
func TestReplay(t *testing.T) {
	path, _, _ := rig(t)
	var transitions []string
	n, err := Replay(path, Query{Type: string(event.TypeActivity)}, event.ConsumerFunc(func(ev event.Event) {
		transitions = append(transitions, ev.String(event.POldState)+"->"+ev.String(event.PNewState))
	}))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(transitions) || n == 0 {
		t.Fatalf("replayed %d, callbacks %d", n, len(transitions))
	}
	// The final replayed transition closes the process.
	if transitions[len(transitions)-1] != "Running->Completed" {
		t.Fatalf("transitions = %v", transitions)
	}
}

func TestRecorderFailurePaths(t *testing.T) {
	if _, err := NewRecorder(filepath.Join(t.TempDir(), "missing-dir", "x.jsonl")); err == nil {
		t.Fatal("recorder opened in missing directory")
	}
	if _, err := Read(filepath.Join(t.TempDir(), "missing.jsonl"), Query{}); err == nil {
		t.Fatal("read of missing journal succeeded")
	}
	if _, err := Replay(filepath.Join(t.TempDir(), "missing.jsonl"), Query{}, event.ConsumerFunc(func(event.Event) {})); err == nil {
		t.Fatal("replay of missing journal succeeded")
	}
	// Closed recorder drops events silently.
	path := filepath.Join(t.TempDir(), "closed.jsonl")
	rec, err := NewRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rec.Consume(event.New(event.TypeActivity, vclock.NewVirtual().Next(), "x", nil))
	recs, err := Read(path, Query{})
	if err != nil || len(recs) != 0 {
		t.Fatalf("closed recorder wrote: %v", recs)
	}
}

func TestTornJournalTolerated(t *testing.T) {
	path, _, _ := rig(t)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"ty`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := Read(path, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 {
		t.Fatalf("records after torn write = %d", len(recs))
	}
}

// TestReplayThroughAwareness: the journal replays through a compiled
// awareness description and finds the same composite condition as live
// detection would (the E11 experiment's correctness core).
func TestReplayThroughAwareness(t *testing.T) {
	// Build a live system with a recorder but NO awareness engine.
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	rec, err := NewRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtual()
	sys, err := system.New(system.Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Coordination().Observe(rec)
	sys.Contexts().Observe(rec)
	ctxSchema := &core.ResourceSchema{
		Name: "DL", Kind: core.ContextResource,
		Fields: []core.FieldDef{
			{Name: "A", Type: core.FieldTime},
			{Name: "B", Type: core.FieldTime},
		},
	}
	p := &core.ProcessSchema{
		Name: "Watched",
		ResourceVars: []core.ResourceVariable{
			{Name: "c", Usage: core.UsageLocal, Schema: ctxSchema},
		},
		Activities: []core.ActivityVariable{
			{Name: "W", Schema: &core.BasicActivitySchema{Name: "W2"}},
		},
	}
	if err := sys.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	pi, err := sys.StartProcess("Watched", "")
	if err != nil {
		t.Fatal(err)
	}
	t0 := clk.Now()
	if err := sys.SetContextField(pi.ID(), "c", "B", t0.Add(48*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContextField(pi.ID(), "c", "A", t0.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// After the fact: compile A <= B over the journal.
	schema := &awareness.Schema{
		Name:    "Late",
		Process: p,
		Description: &awareness.Compare2Node{
			Op: "<=",
			Inputs: [2]awareness.Node{
				&awareness.ContextSource{Context: "DL", Field: "A"},
				&awareness.ContextSource{Context: "DL", Field: "B"},
			},
		},
		DeliveryRole: core.OrgRole("R"),
	}
	detections := 0
	graph, err := awareness.Compile([]*awareness.Schema{schema}, true,
		event.ConsumerFunc(func(event.Event) { detections++ }))
	if err != nil {
		t.Fatal(err)
	}
	n, err := Replay(path, Query{}, event.ConsumerFunc(func(ev event.Event) {
		_, _ = graph.InjectEvent(ev)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || detections != 1 {
		t.Fatalf("replayed %d events, detections = %d, want 1", n, detections)
	}
}

func TestHydrate(t *testing.T) {
	if _, ok := hydrate("x", "1999-09-02T09:00:00Z").(time.Time); !ok {
		t.Fatal("RFC3339 string not hydrated to time")
	}
	if got := hydrate("x", "plain"); got != "plain" {
		t.Fatalf("plain string mangled: %v", got)
	}
	if got := hydrate("x", float64(7)); got != int64(7) {
		t.Fatalf("integral float = %v (%T)", got, got)
	}
	if got := hydrate("x", 7.5); got != 7.5 {
		t.Fatalf("fractional float mangled: %v", got)
	}
	refs := hydrate(event.PProcesses, []any{"P/p-1", "bogus", 3}).([]event.ProcessRef)
	if len(refs) != 1 || refs[0] != (event.ProcessRef{SchemaID: "P", InstanceID: "p-1"}) {
		t.Fatalf("refs = %v", refs)
	}
	if got := hydrate("other", []any{"a"}); len(got.([]any)) != 1 {
		t.Fatalf("foreign list mangled: %v", got)
	}
	if got := hydrate("x", true); got != true {
		t.Fatalf("bool mangled: %v", got)
	}
}

package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cmi_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Idempotent registration returns the same instrument.
	if r.Counter("cmi_test_total", "a counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("cmi_test_depth", "a gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y", "")
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("z", "", nil)
	h.Observe(time.Second)
	if h.Count() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	r.CounterFunc("f", "", func() float64 { return 1 })
	r.GaugeFunc("f2", "", func() float64 { return 1 })
	v := r.CounterVec("v", "", "k")
	v.With("a").Inc()
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cmi_test_seconds", "latency", []time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (le is inclusive)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // +Inf
	h.Observe(-time.Second)           // clamps to 0, bucket 0
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`cmi_test_seconds_bucket{le="0.001"} 3`,
		`cmi_test_seconds_bucket{le="0.01"} 4`,
		`cmi_test_seconds_bucket{le="+Inf"} 5`,
		`cmi_test_seconds_count 5`,
		"# TYPE cmi_test_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestValueHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.ValueHistogram("cmi_test_batch_size", "batch sizes", nil) // SizeBuckets
	h.Observe(1)   // bucket le=1
	h.Observe(2)   // le=2 (inclusive)
	h.Observe(3)   // le=4
	h.Observe(500) // +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 506 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// Registering the same series again returns the original instrument.
	if again := r.ValueHistogram("cmi_test_batch_size", "batch sizes", nil); again != h {
		t.Fatal("re-registration returned a different instrument")
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cmi_test_batch_size histogram",
		`cmi_test_batch_size_bucket{le="1"} 1`,
		`cmi_test_batch_size_bucket{le="2"} 2`,
		`cmi_test_batch_size_bucket{le="4"} 3`,
		`cmi_test_batch_size_bucket{le="128"} 3`,
		`cmi_test_batch_size_bucket{le="+Inf"} 4`,
		"cmi_test_batch_size_sum 506",
		"cmi_test_batch_size_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Nil-safety mirrors the other instruments.
	var nilH *ValueHistogram
	nilH.Observe(7)
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil ValueHistogram not inert")
	}
	var nilReg *Registry
	if got := nilReg.ValueHistogram("cmi_test_nil", "x", nil); got != nil {
		t.Fatal("nil registry returned a live instrument")
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("cmi_b_total", "bees", L("kind", "worker")).Add(2)
	r.Counter("cmi_b_total", "bees", L("kind", "queen")).Add(1)
	r.Gauge("cmi_a_depth", "depth").Set(3)
	r.GaugeFunc("cmi_c_live", "sampled", func() float64 { return 9 })
	r.CounterVec("cmi_d_total", "vec", "state", L("layer", "enact")).With("Running").Add(6)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP cmi_b_total bees\n# TYPE cmi_b_total counter\n",
		`cmi_b_total{kind="worker"} 2`,
		`cmi_b_total{kind="queen"} 1`,
		"# TYPE cmi_a_depth gauge\ncmi_a_depth 3\n",
		"cmi_c_live 9",
		`cmi_d_total{layer="enact",state="Running"} 6`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families are sorted by name.
	if strings.Index(out, "cmi_a_depth") > strings.Index(out, "cmi_b_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("cmi_e_total", "", L("route", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `route="a\"b\\c\n"`) {
		t.Fatalf("label not escaped: %s", b.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cmi_conc_seconds", "", nil)
	v := r.CounterVec("cmi_conc_total", "", "s")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
				v.With([]string{"a", "b", "c"}[i%3]).Inc()
				r.Counter("cmi_conc2_total", "").Inc()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_, _ = r.WriteTo(&b)
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if r.Counter("cmi_conc2_total", "").Value() != 8000 {
		t.Fatal("counter lost increments")
	}
}

// TestConcurrentScrapeAndRegistration races WriteTo against lazy series
// creation (new label sets, new families, sampled series) — the shape of
// a /api/metrics scrape under live HTTP traffic. Run with -race; the
// regression was WriteTo iterating family.series unlocked while register
// appended to it.
func TestConcurrentScrapeAndRegistration(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cmi_lazy_total", "", "k")
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			_, _ = r.WriteTo(&b)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				id := fmt.Sprintf("%d-%d", i, j)
				v.With(id).Inc()
				r.Counter("cmi_lazy2_total", "", L("n", id)).Inc()
				r.Histogram("cmi_lazy_seconds", "", nil, L("n", id)).Observe(time.Millisecond)
				r.GaugeFunc("cmi_lazy_depth", "", func() float64 { return 1 }, L("n", id))
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
}

// TestSampleReplacement pins the re-registration contract: sampled series
// replace their callback (so a rebuilt layer takes over the series), while
// real instruments are never displaced by a later sampled registration.
func TestSampleReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("cmi_live_depth", "", func() float64 { return 1 }, L("shard", "0"))
	r.GaugeFunc("cmi_live_depth", "", func() float64 { return 2 }, L("shard", "0"))
	r.CounterFunc("cmi_live_total", "", func() float64 { return 10 })
	r.CounterFunc("cmi_live_total", "", func() float64 { return 20 })
	c := r.Counter("cmi_real_total", "")
	c.Add(7)
	r.CounterFunc("cmi_real_total", "", func() float64 { return 99 })

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `cmi_live_depth{shard="0"} 2`) {
		t.Fatalf("gauge sample not replaced:\n%s", out)
	}
	if !strings.Contains(out, "cmi_live_total 20") {
		t.Fatalf("counter sample not replaced:\n%s", out)
	}
	if !strings.Contains(out, "cmi_real_total 7") {
		t.Fatalf("real counter displaced by sampled registration:\n%s", out)
	}
}

// BenchmarkHistogramObserve guards the allocation-free hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("cmi_bench_seconds", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Nanosecond)
	}
}

// Package obs is the CMI observability substrate: a dependency-free
// metrics registry with atomic counters, gauges and fixed-bucket latency
// histograms, exposed in the Prometheus text format (version 0.0.4).
//
// The paper's whole premise is awareness of process enactment (Sections
// 5-6.5); this package gives the system awareness of itself. Every engine
// layer records into a Registry owned by the System facade, and the
// federation server serves the exposition at GET /api/metrics.
//
// Design constraints, in order:
//
//  1. Hot-path recording must be allocation-free: Counter.Add, Gauge.Set
//     and Histogram.Observe are single atomic operations (a histogram
//     adds one bucket scan over a small fixed array). Instrument methods
//     are nil-safe so un-instrumented engines pay one nil check.
//  2. No third-party modules; exposition is written by hand.
//  3. Registration is idempotent per (name, labels) so layers can be
//     re-instrumented (e.g. awareness Start after Stop) without duplicate
//     series. Instrument series return the original instrument; sampled
//     series (CounterFunc/GaugeFunc) replace their callback so the series
//     always reflects the live instance.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Label is one key="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind orders families in the exposition and selects the TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// A Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil counter (no-op), so un-instrumented code
// paths need no branching at the call site.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a value that can go up and down. It stores float64 bits
// atomically so Set is one store and exposition needs no lock.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (compare-and-swap loop). Nil-safe.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default latency histogram bucket upper bounds:
// 50µs .. ~3.3s in powers of four, suiting both in-memory detection
// (microseconds) and remote delivery pushes (milliseconds and up).
var DefBuckets = []time.Duration{
	50 * time.Microsecond,
	200 * time.Microsecond,
	800 * time.Microsecond,
	3200 * time.Microsecond,
	12800 * time.Microsecond,
	51200 * time.Microsecond,
	204800 * time.Microsecond,
	819200 * time.Microsecond,
	3276800 * time.Microsecond,
}

// A Histogram is a fixed-bucket latency histogram. Observe is
// allocation-free: one linear scan of the (small, fixed) bound slice and
// three atomic adds. Buckets are cumulative at exposition time, per the
// Prometheus convention.
type Histogram struct {
	bounds   []time.Duration // sorted upper bounds; +Inf is implicit
	counts   []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	sumNanos atomic.Int64
	count    atomic.Uint64
}

// Observe records one duration. Nil-safe. Negative durations clamp to 0.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
	h.count.Add(1)
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNanos.Load())
}

// SizeBuckets are the default bucket upper bounds for count-valued
// histograms (batch sizes, fan-out widths): powers of two from 1 to 128.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// A ValueHistogram is a fixed-bucket histogram over unitless float64
// values — batch sizes, queue lengths — what Histogram is for
// durations. Observe is allocation-free: one scan of the fixed bound
// slice and three atomic operations.
type ValueHistogram struct {
	bounds  []float64       // sorted upper bounds; +Inf is implicit
	counts  []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value. Nil-safe.
func (h *ValueHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns how many observations were recorded.
func (h *ValueHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *ValueHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// series is one registered metric series: a live instrument or a sampled
// callback, under one family.
type series struct {
	labels []Label
	// exactly one of the following is set
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	vhist   *ValueHistogram
	// sample holds a CounterFunc / GaugeFunc callback. It is atomic
	// because re-registration replaces the callback (a layer rebuilt
	// after a Stop/Start cycle must not leave the series sampling dead
	// objects) while WriteTo reads it without the registry lock.
	sample atomic.Pointer[func() float64]
}

// family groups all series sharing a metric name.
type family struct {
	name string
	help string
	kind metricKind
	// ordered by registration; key -> index for idempotent lookup
	series []*series
	byKey  map[string]int
}

// A Registry holds metric families and renders the Prometheus text
// exposition. It is safe for concurrent use; the zero value is not usable,
// call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

// familyLocked finds or creates the named family, checking kind agreement.
func (r *Registry) familyLocked(name, help string, kind metricKind) *family {
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, byKey: make(map[string]int)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// lookup is the read-locked fast path of register: callers that re-request
// an existing series (e.g. per-request HTTP instruments) don't serialize
// on the exclusive lock.
func (r *Registry) lookup(name string, kind metricKind, key string) (*series, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.byName[name]
	if !ok || f.kind != kind {
		return nil, false
	}
	i, ok := f.byKey[key]
	if !ok {
		return nil, false
	}
	return f.series[i], true
}

// register adds (or returns the existing) series under the family.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, make func() *series) *series {
	if r == nil {
		return nil
	}
	key := labelKey(labels)
	if s, ok := r.lookup(name, kind, key); ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kind)
	if i, ok := f.byKey[key]; ok {
		return f.series[i]
	}
	s := make()
	s.labels = labels
	f.byKey[key] = len(f.series)
	f.series = append(f.series, s)
	return s
}

// registerSample registers a sampled series. Unlike instrument series,
// re-registering an existing sampled series replaces its callback: the
// sampled object may have been rebuilt (e.g. a detector pool recreated by
// an awareness engine restart), and the old closure would otherwise keep
// sampling the dead instance forever.
func (r *Registry) registerSample(name, help string, kind metricKind, labels []Label, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kind)
	key := labelKey(labels)
	if i, ok := f.byKey[key]; ok {
		s := f.series[i]
		if s.counter == nil && s.gauge == nil && s.hist == nil && s.vhist == nil {
			s.sample.Store(&fn)
		}
		return
	}
	s := &series{labels: labels}
	s.sample.Store(&fn)
	f.byKey[key] = len(f.series)
	f.series = append(f.series, s)
}

// Counter registers (idempotently) and returns a counter series. A nil
// registry returns a nil Counter whose methods are no-ops.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels, func() *series { return &series{counter: &Counter{}} })
	if s == nil {
		return nil
	}
	return s.counter
}

// Gauge registers (idempotently) and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels, func() *series { return &series{gauge: &Gauge{}} })
	if s == nil {
		return nil
	}
	return s.gauge
}

// Histogram registers (idempotently) and returns a histogram series over
// the given bucket bounds (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []time.Duration, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	s := r.register(name, help, kindHistogram, labels, func() *series {
		return &series{hist: &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}}
	})
	if s == nil {
		return nil
	}
	return s.hist
}

// ValueHistogram registers (idempotently) and returns a unitless
// histogram series over the given bucket bounds (SizeBuckets when nil).
// It shares the histogram family kind, so a name must not mix duration
// and value histograms.
func (r *Registry) ValueHistogram(name, help string, buckets []float64, labels ...Label) *ValueHistogram {
	if buckets == nil {
		buckets = SizeBuckets
	}
	s := r.register(name, help, kindHistogram, labels, func() *series {
		return &series{vhist: &ValueHistogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}}
	})
	if s == nil {
		return nil
	}
	return s.vhist
}

// CounterFunc registers a counter series sampled by fn at exposition
// time — for values another component already counts atomically (e.g.
// graph node counters), so the hot path pays nothing extra.
// Re-registering an existing sampled series replaces its callback, so a
// rebuilt layer takes over the series instead of leaving it sampling the
// old instance.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerSample(name, help, kindCounter, labels, fn)
}

// GaugeFunc registers a gauge series sampled by fn at exposition time —
// for instantaneous values like queue depths. fn must not call back into
// this registry. Re-registration replaces the callback, as with
// CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerSample(name, help, kindGauge, labels, fn)
}

// A CounterVec is a family of counters distinguished by one variable
// label (plus fixed base labels), e.g. transitions by target state. With
// is a read-locked map hit on the fast path.
type CounterVec struct {
	r      *Registry
	name   string
	help   string
	varKey string
	base   []Label

	mu sync.RWMutex
	m  map[string]*Counter
}

// CounterVec registers a counter family keyed by varKey.
func (r *Registry) CounterVec(name, help, varKey string, base ...Label) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r: r, name: name, help: help, varKey: varKey, base: base, m: make(map[string]*Counter)}
}

// With returns the counter for one value of the variable label, creating
// the series on first use. Nil-safe: a nil vec returns a nil (no-op)
// counter.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.m[value]; ok {
		return c
	}
	labels := append(append([]Label(nil), v.base...), Label{Key: v.varKey, Value: value})
	c = v.r.Counter(v.name, v.help, labels...)
	v.m[value] = c
	return c
}

// ---------------------------------------------------------------------
// Exposition.

func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// famSnapshot is one family captured under the registry read lock, with
// its own copy of the series slice.
type famSnapshot struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// WriteTo renders the Prometheus text exposition (families sorted by
// name, series in registration order) and implements io.WriterTo.
//
// Families AND their series slices are snapshotted under the read lock
// before rendering: register appends to family.series under the write
// lock, and series are created lazily at request time (HTTP instruments,
// CounterVec.With), so iterating the live slices unlocked would race a
// concurrent scrape against traffic. Rendering itself runs outside the
// lock because sample callbacks may take component locks that are also
// held while registering (lock-order inversion otherwise).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	fams := make([]famSnapshot, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, famSnapshot{
			name:   f.name,
			help:   f.help,
			kind:   f.kind,
			series: append([]*series(nil), f.series...),
		})
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch {
			case s.hist != nil || s.vhist != nil:
				writeHistogram(&b, f.name, s)
			default:
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				b.WriteByte(' ')
				b.WriteString(formatFloat(seriesValue(s)))
				b.WriteByte('\n')
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func seriesValue(s *series) float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	}
	if fn := s.sample.Load(); fn != nil {
		return (*fn)()
	}
	return 0
}

func writeHistogram(b *strings.Builder, name string, s *series) {
	// Normalize either histogram flavor to float bounds + bucket counts:
	// duration histograms render bounds in seconds, value histograms
	// as-is. Counts are loaded once so the rendered buckets are
	// mutually consistent even under concurrent Observe calls.
	var (
		bounds []float64
		counts []uint64
		sum    float64
	)
	if h := s.hist; h != nil {
		bounds = make([]float64, len(h.bounds))
		for i, bd := range h.bounds {
			bounds[i] = bd.Seconds()
		}
		counts = make([]uint64, len(h.counts))
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
		}
		sum = h.Sum().Seconds()
	} else {
		h := s.vhist
		bounds = h.bounds
		counts = make([]uint64, len(h.counts))
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
		}
		sum = h.Sum()
	}
	var cum uint64
	for i, bound := range bounds {
		cum += counts[i]
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, s.labels, Label{Key: "le", Value: formatFloat(bound)})
		fmt.Fprintf(b, " %d\n", cum)
	}
	cum += counts[len(bounds)]
	b.WriteString(name)
	b.WriteString("_bucket")
	writeLabels(b, s.labels, Label{Key: "le", Value: "+Inf"})
	fmt.Fprintf(b, " %d\n", cum)
	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, s.labels)
	fmt.Fprintf(b, " %s\n", formatFloat(sum))
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, s.labels)
	fmt.Fprintf(b, " %d\n", cum)
}

// ServeHTTP serves the exposition with the text-format content type, so a
// Registry can be mounted directly on a mux.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = r.WriteTo(w)
}

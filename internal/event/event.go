// Package event defines CMI's self-contained event model (paper Section 5).
//
// An event carries a set of name-value pairs, its parameters, that give
// detail about what occurred. Because events are self-contained, the
// parameters completely describe the event: its type, time and source are
// part of the event itself rather than implied by the channel it arrived
// on. This is the property that lets composite events summarize the
// parameters of their constituent events, and it is what distinguishes the
// CMI/CEDMOS model from active-database event models.
//
// Three families of event types exist:
//
//   - TypeActivity: primitive activity state change events (Section 5.1.1),
//     produced each time a CMI activity changes state.
//   - TypeContext: primitive context field change events (Section 5.1.1),
//     produced each time a field in a context resource is modified.
//   - Canonical(P): the canonical event type C_P associated with process
//     schema P (Section 5.1.2). Nearly all awareness operators consume and
//     produce canonical events, which is what makes the operators freely
//     composable.
package event

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/mcc-cmi/cmi/internal/vclock"
)

// Type identifies the kind of an event and therefore the static type of an
// event stream. Streams are typed: an operator input slot accepts exactly
// one Type.
type Type string

// The primitive event types produced by the CMI enactment system.
const (
	// TypeActivity is T_activity, the activity state change event type.
	TypeActivity Type = "cmi.activity"
	// TypeContext is T_context, the context field change event type.
	TypeContext Type = "cmi.context"
	// TypeOutput is the type of events produced by the Output operator:
	// a detected composite event plus delivery instructions (Section 6.2).
	TypeOutput Type = "cmi.output"
)

const canonicalPrefix = "cmi.canonical:"

// Canonical returns C_P, the canonical event type for process schema P.
func Canonical(processSchemaID string) Type {
	return Type(canonicalPrefix + processSchemaID)
}

// IsCanonical reports whether t is a canonical event type, and if so for
// which process schema.
func IsCanonical(t Type) (processSchemaID string, ok bool) {
	s := string(t)
	if strings.HasPrefix(s, canonicalPrefix) {
		return s[len(canonicalPrefix):], true
	}
	return "", false
}

// Parameter names used by the primitive and canonical event types. The
// names follow Section 5.1.1 of the paper.
const (
	// Activity state change event parameters.
	PActivityInstanceID      = "activityInstanceId"
	PParentProcessSchemaID   = "parentProcessSchemaId"
	PParentProcessInstanceID = "parentProcessInstanceId"
	PUser                    = "user"
	PActivityVariableID      = "activityVariableId"
	PActivityProcessSchemaID = "activityProcessSchemaId"
	POldState                = "oldState"
	PNewState                = "newState"

	// Context field change event parameters.
	PContextID     = "contextId"
	PContextName   = "contextName"
	PProcesses     = "processes" // []ProcessRef
	PFieldName     = "fieldName"
	POldFieldValue = "oldFieldValue"
	PNewFieldValue = "newFieldValue"

	// Canonical event parameters (Section 5.1.2).
	PProcessSchemaID   = "processSchemaId"
	PProcessInstanceID = "processInstanceId"
	PIntInfo           = "intInfo" // generic integer information parameter
	PInfo              = "info"    // generic string information parameter

	// Delivery instruction parameters added by the Output operator
	// (Section 6.2).
	PDeliveryRole       = "deliveryRole"
	PDeliveryAssignment = "deliveryAssignment"
	PDescription        = "description"
	PSchemaName         = "awarenessSchema"
	PPriority           = "priority"

	// Self-description parameters present on every flattened event.
	PType   = "type"
	PTime   = "time"
	PSource = "source"
)

// A ProcessRef names one process instance: the pair of process schema id
// and process instance id. Context events carry the set of ProcessRefs the
// context is associated with.
type ProcessRef struct {
	SchemaID   string
	InstanceID string
}

func (r ProcessRef) String() string { return r.SchemaID + "/" + r.InstanceID }

// Params is the name-value parameter set of an event. Values are plain Go
// values (string, int64, bool, time.Time, []ProcessRef, ...). Treat Params
// reachable from an Event as immutable; use Event.With to derive changed
// copies.
type Params map[string]any

// Clone returns a shallow copy of p.
func (p Params) Clone() Params {
	q := make(Params, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// An Event is one self-contained occurrence. The zero Event is meaningless;
// construct events with New or the typed constructors.
type Event struct {
	// Type is the event's type; it determines which parameters are present.
	Type Type
	// Stamp is the clock reading at which the event was produced. The
	// stamp's sequence number totally orders events from one system.
	Stamp vclock.Stamp
	// Source names the event producer (for primitive events, the engine
	// component; for composite events, the operator instance).
	Source string
	// Params carries the event's parameters. Do not mutate; use With.
	Params Params
}

// New returns an event of the given type, stamp and source with a copy of
// the supplied parameters.
func New(t Type, stamp vclock.Stamp, source string, params Params) Event {
	return Event{Type: t, Stamp: stamp, Source: source, Params: params.Clone()}
}

// Time returns the event's timestamp.
func (e Event) Time() time.Time { return e.Stamp.Time }

// Get returns the named parameter and whether it is present.
func (e Event) Get(name string) (any, bool) {
	v, ok := e.Params[name]
	return v, ok
}

// String returns the named parameter as a string. Missing or non-string
// parameters yield "".
func (e Event) String(name string) string {
	if v, ok := e.Params[name]; ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return ""
}

// Int64 returns the named parameter as an int64 and whether it was present
// and integer-valued. Int, int32, int64 and uint values are accepted;
// time.Time values are converted to Unix seconds, which is how deadline
// fields travel through the generic intInfo parameter.
func (e Event) Int64(name string) (int64, bool) {
	v, ok := e.Params[name]
	if !ok {
		return 0, false
	}
	return AsInt64(v)
}

// AsInt64 converts a parameter value to int64 if it has an integer-like
// representation.
func AsInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case int32:
		return int64(x), true
	case uint:
		return int64(x), true
	case uint32:
		return int64(x), true
	case uint64:
		return int64(x), true
	case time.Time:
		return x.Unix(), true
	default:
		return 0, false
	}
}

// With returns a copy of e with the named parameter set. The original
// event is not modified.
func (e Event) With(name string, value any) Event {
	p := e.Params.Clone()
	p[name] = value
	return Event{Type: e.Type, Stamp: e.Stamp, Source: e.Source, Params: p}
}

// WithAll returns a copy of e with all the given parameters set.
func (e Event) WithAll(params Params) Event {
	p := e.Params.Clone()
	for k, v := range params {
		p[k] = v
	}
	return Event{Type: e.Type, Stamp: e.Stamp, Source: e.Source, Params: p}
}

// Flatten returns the fully self-contained parameter set of e: its Params
// plus the type, time and source pseudo-parameters. This is the form in
// which events cross system boundaries (delivery queues, the pub/sub
// baseline, the federation API).
func (e Event) Flatten() Params {
	p := e.Params.Clone()
	p[PType] = string(e.Type)
	p[PTime] = e.Stamp.Time
	p[PSource] = e.Source
	return p
}

// GoString renders the event with sorted parameter names, for stable test
// output and transcripts.
func (e Event) GoString() string {
	names := make([]string, 0, len(e.Params))
	for k := range e.Params {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s{", e.Type, e.Stamp.Time.Format(time.RFC3339))
	for i, k := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%v", k, e.Params[k])
	}
	b.WriteString("}")
	return b.String()
}

// A Consumer accepts events. Event processing inside a detector is
// synchronous: Consume is called on the producer's goroutine.
type Consumer interface {
	Consume(Event)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(Event)

// Consume calls f(e).
func (f ConsumerFunc) Consume(e Event) { f(e) }

package event

import "github.com/mcc-cmi/cmi/internal/vclock"

// ActivityChange describes one activity state transition, the payload of
// the primitive event producer E_activity (Section 5.1.1).
type ActivityChange struct {
	ActivityInstanceID string
	// ParentProcessSchemaID and ParentProcessInstanceID identify the
	// activity's parent process; both are empty when the activity is
	// itself a top-level process.
	ParentProcessSchemaID   string
	ParentProcessInstanceID string
	// User is the participant responsible for the state change, if any.
	User string
	// ActivityVariableID is the activity variable the activity was
	// instantiated from; empty for a top-level process.
	ActivityVariableID string
	// ActivityProcessSchemaID is set when the activity is itself a
	// process: the process schema id of that subprocess.
	ActivityProcessSchemaID string
	OldState                string
	NewState                string
}

// NewActivity builds the primitive activity state change event.
func NewActivity(stamp vclock.Stamp, source string, c ActivityChange) Event {
	p := Params{
		PActivityInstanceID: c.ActivityInstanceID,
		POldState:           c.OldState,
		PNewState:           c.NewState,
	}
	if c.ParentProcessSchemaID != "" {
		p[PParentProcessSchemaID] = c.ParentProcessSchemaID
	}
	if c.ParentProcessInstanceID != "" {
		p[PParentProcessInstanceID] = c.ParentProcessInstanceID
	}
	if c.User != "" {
		p[PUser] = c.User
	}
	if c.ActivityVariableID != "" {
		p[PActivityVariableID] = c.ActivityVariableID
	}
	if c.ActivityProcessSchemaID != "" {
		p[PActivityProcessSchemaID] = c.ActivityProcessSchemaID
	}
	return Event{Type: TypeActivity, Stamp: stamp, Source: source, Params: p}
}

// ContextChange describes one context field modification, the payload of
// the primitive event producer E_context (Section 5.1.1).
type ContextChange struct {
	ContextID   string
	ContextName string
	// Processes records the process instances this context is associated
	// with; a context may be shared by several process instances through
	// resource scoping.
	Processes     []ProcessRef
	FieldName     string
	OldFieldValue any
	NewFieldValue any
}

// NewContext builds the primitive context field change event.
func NewContext(stamp vclock.Stamp, source string, c ContextChange) Event {
	procs := make([]ProcessRef, len(c.Processes))
	copy(procs, c.Processes)
	p := Params{
		PContextID:     c.ContextID,
		PContextName:   c.ContextName,
		PProcesses:     procs,
		PFieldName:     c.FieldName,
		POldFieldValue: c.OldFieldValue,
		PNewFieldValue: c.NewFieldValue,
	}
	return Event{Type: TypeContext, Stamp: stamp, Source: source, Params: p}
}

// ProcessRefs returns the process association list of a context event.
func (e Event) ProcessRefs() []ProcessRef {
	if v, ok := e.Params[PProcesses]; ok {
		if refs, ok := v.([]ProcessRef); ok {
			return refs
		}
	}
	return nil
}

// NewCanonicalEvent builds an event of the canonical type C_P for process
// schema processSchemaID, carrying the given instance id and extra
// parameters. Operators use this when they synthesize canonical output
// from primitive input.
func NewCanonicalEvent(stamp vclock.Stamp, source, processSchemaID, processInstanceID string, extra Params) Event {
	p := extra.Clone()
	p[PProcessSchemaID] = processSchemaID
	p[PProcessInstanceID] = processInstanceID
	return Event{Type: Canonical(processSchemaID), Stamp: stamp, Source: source, Params: p}
}

// InstanceID returns the process instance id a canonical event belongs to.
// The empty string means the event is not partitioned by instance.
func (e Event) InstanceID() string { return e.String(PProcessInstanceID) }

package event

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/mcc-cmi/cmi/internal/vclock"
)

func stamp() vclock.Stamp { return vclock.NewVirtual().Next() }

func TestCanonicalTypeRoundTrip(t *testing.T) {
	ty := Canonical("InfoRequest")
	id, ok := IsCanonical(ty)
	if !ok || id != "InfoRequest" {
		t.Fatalf("IsCanonical(%q) = %q,%v", ty, id, ok)
	}
	if _, ok := IsCanonical(TypeActivity); ok {
		t.Fatal("TypeActivity must not be canonical")
	}
	if _, ok := IsCanonical(TypeContext); ok {
		t.Fatal("TypeContext must not be canonical")
	}
}

func TestNewCopiesParams(t *testing.T) {
	p := Params{"k": "v"}
	e := New(TypeActivity, stamp(), "test", p)
	p["k"] = "mutated"
	if e.String("k") != "v" {
		t.Fatalf("New did not copy params: got %q", e.String("k"))
	}
}

func TestWithDoesNotMutateOriginal(t *testing.T) {
	e := New(TypeActivity, stamp(), "test", Params{"a": int64(1)})
	e2 := e.With("a", int64(2)).With("b", "x")
	if v, _ := e.Int64("a"); v != 1 {
		t.Fatalf("original mutated: a=%d", v)
	}
	if v, _ := e2.Int64("a"); v != 2 {
		t.Fatalf("copy wrong: a=%d", v)
	}
	if e2.String("b") != "x" {
		t.Fatalf("copy missing b")
	}
	if _, ok := e.Get("b"); ok {
		t.Fatal("original gained parameter b")
	}
}

func TestWithAll(t *testing.T) {
	e := New(TypeContext, stamp(), "s", Params{"a": 1})
	e2 := e.WithAll(Params{"b": 2, "c": 3})
	if _, ok := e2.Get("b"); !ok {
		t.Fatal("missing b")
	}
	if _, ok := e.Get("c"); ok {
		t.Fatal("original mutated")
	}
}

func TestInt64Conversions(t *testing.T) {
	now := time.Date(1999, 9, 2, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   any
		want int64
		ok   bool
	}{
		{int64(7), 7, true},
		{int(8), 8, true},
		{int32(9), 9, true},
		{uint(10), 10, true},
		{uint32(11), 11, true},
		{uint64(12), 12, true},
		{now, now.Unix(), true},
		{"nope", 0, false},
		{3.5, 0, false},
		{nil, 0, false},
	}
	for _, c := range cases {
		got, ok := AsInt64(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("AsInt64(%v) = %d,%v want %d,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestInt64MissingParam(t *testing.T) {
	e := New(TypeActivity, stamp(), "s", Params{})
	if _, ok := e.Int64("absent"); ok {
		t.Fatal("Int64 on absent parameter must report !ok")
	}
}

func TestStringOnNonString(t *testing.T) {
	e := New(TypeActivity, stamp(), "s", Params{"n": 5})
	if e.String("n") != "" {
		t.Fatal("String on non-string parameter must be empty")
	}
}

func TestFlattenSelfContained(t *testing.T) {
	st := stamp()
	e := New(TypeActivity, st, "coordination-engine", Params{"x": "y"})
	f := e.Flatten()
	if f[PType] != string(TypeActivity) {
		t.Errorf("flattened type = %v", f[PType])
	}
	if !f[PTime].(time.Time).Equal(st.Time) {
		t.Errorf("flattened time = %v", f[PTime])
	}
	if f[PSource] != "coordination-engine" {
		t.Errorf("flattened source = %v", f[PSource])
	}
	if f["x"] != "y" {
		t.Errorf("flattened payload lost")
	}
	// Flatten must not alias the event's own params.
	f["x"] = "mutated"
	if e.String("x") != "y" {
		t.Fatal("Flatten aliased event params")
	}
}

func TestNewActivityOmitsEmptyOptionalParams(t *testing.T) {
	e := NewActivity(stamp(), "ce", ActivityChange{
		ActivityInstanceID: "a1",
		OldState:           "Ready",
		NewState:           "Running",
	})
	for _, k := range []string{PParentProcessSchemaID, PParentProcessInstanceID, PUser, PActivityVariableID, PActivityProcessSchemaID} {
		if _, ok := e.Get(k); ok {
			t.Errorf("optional parameter %q present on top-level event", k)
		}
	}
	if e.String(PActivityInstanceID) != "a1" || e.String(POldState) != "Ready" || e.String(PNewState) != "Running" {
		t.Fatalf("mandatory params wrong: %#v", e)
	}
}

func TestNewActivityFullParams(t *testing.T) {
	e := NewActivity(stamp(), "ce", ActivityChange{
		ActivityInstanceID:      "a1",
		ParentProcessSchemaID:   "TaskForce",
		ParentProcessInstanceID: "tf-1",
		User:                    "dr.reed",
		ActivityVariableID:      "LabTest",
		ActivityProcessSchemaID: "InfoRequest",
		OldState:                "Ready",
		NewState:                "Running",
	})
	if e.Type != TypeActivity {
		t.Fatalf("type = %v", e.Type)
	}
	want := map[string]string{
		PParentProcessSchemaID:   "TaskForce",
		PParentProcessInstanceID: "tf-1",
		PUser:                    "dr.reed",
		PActivityVariableID:      "LabTest",
		PActivityProcessSchemaID: "InfoRequest",
	}
	for k, v := range want {
		if e.String(k) != v {
			t.Errorf("%s = %q want %q", k, e.String(k), v)
		}
	}
}

func TestNewContextCopiesProcessList(t *testing.T) {
	procs := []ProcessRef{{SchemaID: "TaskForce", InstanceID: "tf-1"}}
	e := NewContext(stamp(), "core", ContextChange{
		ContextID:     "ctx-1",
		ContextName:   "TaskForceContext",
		Processes:     procs,
		FieldName:     "TaskForceDeadline",
		OldFieldValue: nil,
		NewFieldValue: int64(100),
	})
	procs[0].InstanceID = "mutated"
	got := e.ProcessRefs()
	if len(got) != 1 || got[0].InstanceID != "tf-1" {
		t.Fatalf("process list aliased: %v", got)
	}
	if e.String(PFieldName) != "TaskForceDeadline" {
		t.Fatalf("fieldName = %q", e.String(PFieldName))
	}
}

func TestProcessRefsOnNonContextEvent(t *testing.T) {
	e := New(TypeActivity, stamp(), "s", Params{})
	if refs := e.ProcessRefs(); refs != nil {
		t.Fatalf("expected nil refs, got %v", refs)
	}
}

func TestCanonicalEventCarriesInstance(t *testing.T) {
	e := NewCanonicalEvent(stamp(), "op", "TaskForce", "tf-9", Params{PIntInfo: int64(42)})
	if e.Type != Canonical("TaskForce") {
		t.Fatalf("type = %v", e.Type)
	}
	if e.InstanceID() != "tf-9" {
		t.Fatalf("instance = %q", e.InstanceID())
	}
	if v, _ := e.Int64(PIntInfo); v != 42 {
		t.Fatalf("intInfo = %d", v)
	}
}

func TestProcessRefString(t *testing.T) {
	r := ProcessRef{SchemaID: "P", InstanceID: "i1"}
	if r.String() != "P/i1" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestConsumerFunc(t *testing.T) {
	var got Event
	c := ConsumerFunc(func(e Event) { got = e })
	e := New(TypeActivity, stamp(), "s", Params{"k": "v"})
	c.Consume(e)
	if got.String("k") != "v" {
		t.Fatal("ConsumerFunc did not forward event")
	}
}

// Property: With never mutates the receiver, for arbitrary keys/values.
func TestWithImmutableProperty(t *testing.T) {
	base := New(TypeActivity, stamp(), "s", Params{"fixed": "base"})
	f := func(key, val string) bool {
		if key == "" {
			key = "k"
		}
		derived := base.With(key, val)
		if base.String("fixed") != "base" {
			return false
		}
		if key != "fixed" {
			if _, ok := base.Get(key); ok && key != "fixed" {
				return false
			}
		}
		return derived.String(key) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone produces an equal but independent parameter set.
func TestParamsCloneProperty(t *testing.T) {
	f := func(keys []string) bool {
		p := Params{}
		for i, k := range keys {
			p[k] = i
		}
		q := p.Clone()
		if len(q) != len(p) {
			return false
		}
		for k, v := range p {
			if q[k] != v {
				return false
			}
		}
		q["__new__"] = true
		_, leaked := p["__new__"]
		return !leaked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGoStringStable(t *testing.T) {
	e := New(TypeActivity, stamp(), "s", Params{"b": 2, "a": 1, "c": 3})
	first := e.GoString()
	for i := 0; i < 10; i++ {
		if e.GoString() != first {
			t.Fatal("GoString not deterministic")
		}
	}
}

package event

// A BatchConsumer accepts a slice of events in one call. Consumers on
// the event hot path (the delivery agent, the crisis store sink)
// implement it so a detection shard that drained a batch from its
// channel hands the whole batch over with one call — one lock
// acquisition and one journal commit-group join instead of one per
// event. The slice is only valid for the duration of the call.
type BatchConsumer interface {
	ConsumeBatch([]Event)
}

// A Batcher buffers events and forwards them to its inner consumer in
// batches: via one ConsumeBatch call when the inner consumer implements
// BatchConsumer, per event otherwise. It is not safe for concurrent
// use — each detection shard owns one Batcher and calls it from the
// shard goroutine; Flush runs at batch-end (channel drained) and before
// any quiesce barrier, so batching never reorders or delays events past
// a synchronization point.
type Batcher struct {
	inner Consumer
	batch BatchConsumer // inner's batch interface; nil when unsupported
	buf   []Event
}

// NewBatcher returns a Batcher forwarding to inner.
func NewBatcher(inner Consumer) *Batcher {
	b := &Batcher{inner: inner}
	b.batch, _ = inner.(BatchConsumer)
	return b
}

// Consume buffers one event until the next Flush.
func (b *Batcher) Consume(e Event) {
	b.buf = append(b.buf, e)
}

// Flush forwards every buffered event and empties the buffer.
func (b *Batcher) Flush() {
	if len(b.buf) == 0 {
		return
	}
	if b.batch != nil {
		b.batch.ConsumeBatch(b.buf)
	} else {
		for i := range b.buf {
			b.inner.Consume(b.buf[i])
		}
	}
	clear(b.buf) // drop param-map references so the GC can reclaim them
	b.buf = b.buf[:0]
}

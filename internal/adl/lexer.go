// Package adl implements the Awareness and process Definition Language:
// a textual specification language for CMM context schemas, process
// schemas and awareness schemas. It is this repository's stand-in for
// the CMI graphical specification tools of Figure 6 — the language
// constructs exactly the objects the GUI constructs (awareness schema
// DAGs over a process schema, with an output step holding the delivery
// role and role assignment), and runs the same validation.
//
// A specification file contains three kinds of declarations:
//
//	contextschema TaskForceContext {
//	    role TaskForceMembers
//	    time TaskForceDeadline
//	}
//
//	process InfoRequest {
//	    context irc InfoRequestContext
//	    input context tfc TaskForceContext
//	    activity Gather role org Epidemiologist
//	    activity Deliver role org Epidemiologist
//	    seq Gather -> Deliver
//	}
//
//	awareness DeadlineViolation on InfoRequest {
//	    op1 = context TaskForceContext.TaskForceDeadline
//	    op2 = context InfoRequestContext.RequestDeadline
//	    root = compare2 "<=" (op1, op2)
//	    deliver scoped InfoRequestContext.Requestor
//	    assign identity
//	    describe "Task force deadline moved earlier than request deadline"
//	}
//
// Comments run from '#' to end of line.
package adl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokComma
	tokEquals
	tokArrow
	tokDot
	tokOp // comparison operator: == != < <= > >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokEquals:
		return "'='"
	case tokArrow:
		return "'->'"
	case tokDot:
		return "'.'"
	case tokOp:
		return "comparison operator"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokenKind
	text string
	line int
}

type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("adl: line %d: %s", e.line, e.msg) }

// lex tokenizes the source. It never panics; malformed input yields an
// error with a line number.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", line})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", line})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", line})
			i++
		case c == '-':
			if i+1 < n && src[i+1] == '>' {
				toks = append(toks, token{tokArrow, "->", line})
				i += 2
			} else if i+1 < n && isDigit(src[i+1]) {
				j := i + 1
				for j < n && isDigit(src[j]) {
					j++
				}
				toks = append(toks, token{tokNumber, src[i:j], line})
				i = j
			} else {
				return nil, &lexError{line, "unexpected '-'"}
			}
		case c == '=':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "==", line})
				i += 2
			} else {
				toks = append(toks, token{tokEquals, "=", line})
				i++
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", line})
				i += 2
			} else {
				return nil, &lexError{line, "unexpected '!'"}
			}
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < n && src[i] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, line})
		case c == '"':
			j := i + 1
			var b strings.Builder
			closed := false
			for j < n {
				if src[j] == '"' {
					closed = true
					j++
					break
				}
				if src[j] == '\n' {
					break
				}
				if src[j] == '\\' && j+1 < n {
					j++
				}
				b.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, &lexError{line, "unterminated string"}
			}
			toks = append(toks, token{tokString, b.String(), line})
			i = j
		case isDigit(c):
			j := i
			for j < n && isDigit(src[j]) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], line})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		default:
			return nil, &lexError{line, fmt.Sprintf("unexpected character %q", string(c))}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

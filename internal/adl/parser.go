package adl

import (
	"fmt"
	"strconv"

	"github.com/mcc-cmi/cmi/internal/awareness"
	"github.com/mcc-cmi/cmi/internal/core"
)

// A Spec is the result of parsing one ADL source: the declared context
// schemas, process schemas (validated, with subprocess references
// resolved) and awareness schemas.
type Spec struct {
	ContextSchemas []*core.ResourceSchema
	Processes      []*core.ProcessSchema
	Awareness      []*awareness.Schema
}

// Process returns the declared process schema with the given name.
func (s *Spec) Process(name string) (*core.ProcessSchema, bool) {
	for _, p := range s.Processes {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// Register installs every declared process schema into the registry.
func (s *Spec) Register(reg *core.SchemaRegistry) error {
	for _, p := range s.Processes {
		if err := reg.Register(p); err != nil {
			return err
		}
	}
	return nil
}

// Parse compiles ADL source text into a Spec. All cross-references
// (context schema names, subprocess names, awareness process names) are
// resolved; the resulting schemas are fully validated.
func Parse(src string) (*Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	raw, err := p.parseFile()
	if err != nil {
		return nil, err
	}
	return raw.resolve()
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atKw(k string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == k
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("adl: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, p.errf(t, "expected %s, got %q", k, t.text)
	}
	return t, nil
}

func (p *parser) expectKw(k string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != k {
		return p.errf(t, "expected %q, got %q", k, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	return t.text, nil
}

// ----- raw file structure -----

type rawFile struct {
	ctxSchemas []*core.ResourceSchema
	processes  []*rawProcess
	awareness  []*rawAwareness
}

type rawProcess struct {
	line    int
	name    string
	resVars []core.ResourceVariable
	acts    []rawActivity
	deps    []core.Dependency
	entry   []string
}

type rawActivity struct {
	line       int
	name       string
	subprocess string // non-empty for subprocess invocations
	role       core.RoleRef
	optional   bool
	repeatable bool
	bind       map[string]string
}

type rawAwareness struct {
	line     int
	name     string
	process  string
	defs     []rawDef
	deliver  core.RoleRef
	assign   string
	describe string
	priority int
}

type rawDef struct {
	line int
	name string
	expr *rawExpr
}

type rawExpr struct {
	line    int
	kind    string // activity, context, and, seq, or, count, compare1, compare2, translate, ref
	ref     string
	av      string
	ctx     string
	field   string
	from    []core.State
	to      []core.State
	op      string
	operand int64
	copy    int
	args    []*rawExpr
}

func (p *parser) parseFile() (*rawFile, error) {
	f := &rawFile{}
	for {
		t := p.peek()
		if t.kind == tokEOF {
			return f, nil
		}
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected a declaration, got %q", t.text)
		}
		switch t.text {
		case "contextschema":
			cs, err := p.parseContextSchema()
			if err != nil {
				return nil, err
			}
			f.ctxSchemas = append(f.ctxSchemas, cs)
		case "process":
			pr, err := p.parseProcess()
			if err != nil {
				return nil, err
			}
			f.processes = append(f.processes, pr)
		case "awareness":
			aw, err := p.parseAwareness()
			if err != nil {
				return nil, err
			}
			f.awareness = append(f.awareness, aw)
		default:
			return nil, p.errf(t, "unknown declaration %q (want contextschema, process or awareness)", t.text)
		}
	}
}

var fieldTypes = map[string]core.FieldType{
	"string": core.FieldString,
	"int":    core.FieldInt,
	"time":   core.FieldTime,
	"bool":   core.FieldBool,
	"role":   core.FieldRole,
	"any":    core.FieldAny,
}

func (p *parser) parseContextSchema() (*core.ResourceSchema, error) {
	_ = p.next() // contextschema
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	cs := &core.ResourceSchema{Name: name, Kind: core.ContextResource}
	for {
		t := p.next()
		if t.kind == tokRBrace {
			break
		}
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected a field type, got %q", t.text)
		}
		ft, ok := fieldTypes[t.text]
		if !ok {
			return nil, p.errf(t, "unknown field type %q", t.text)
		}
		fname, err := p.ident()
		if err != nil {
			return nil, err
		}
		cs.Fields = append(cs.Fields, core.FieldDef{Name: fname, Type: ft})
	}
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	return cs, nil
}

func (p *parser) parseProcess() (*rawProcess, error) {
	start := p.next() // process
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	pr := &rawProcess{line: start.line, name: name}
	for {
		t := p.peek()
		if t.kind == tokRBrace {
			p.next()
			return pr, nil
		}
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected a process statement, got %q", t.text)
		}
		switch t.text {
		case "context":
			if err := p.parseContextVar(pr, core.UsageLocal); err != nil {
				return nil, err
			}
		case "input":
			p.next()
			if !p.atKw("context") {
				return nil, p.errf(p.peek(), "expected 'context' after 'input'")
			}
			if err := p.parseContextVar(pr, core.UsageInput); err != nil {
				return nil, err
			}
		case "data":
			p.next()
			varName, err := p.ident()
			if err != nil {
				return nil, err
			}
			typeName, err := p.ident()
			if err != nil {
				return nil, err
			}
			pr.resVars = append(pr.resVars, core.ResourceVariable{
				Name:  varName,
				Usage: core.UsageLocal,
				Schema: &core.ResourceSchema{
					Name: typeName, Kind: core.DataResource, DataType: typeName,
				},
			})
		case "activity":
			a, err := p.parseActivity(false)
			if err != nil {
				return nil, err
			}
			pr.acts = append(pr.acts, a)
		case "subprocess":
			a, err := p.parseActivity(true)
			if err != nil {
				return nil, err
			}
			pr.acts = append(pr.acts, a)
		case "seq", "cancel":
			p.next()
			src, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokArrow); err != nil {
				return nil, err
			}
			dst, err := p.ident()
			if err != nil {
				return nil, err
			}
			dt := core.DepSequence
			if t.text == "cancel" {
				dt = core.DepCancel
			}
			pr.deps = append(pr.deps, core.Dependency{Type: dt, Sources: []string{src}, Target: dst})
		case "andjoin", "orjoin":
			p.next()
			srcs, err := p.parseNameList()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokArrow); err != nil {
				return nil, err
			}
			dst, err := p.ident()
			if err != nil {
				return nil, err
			}
			dt := core.DepAndJoin
			if t.text == "orjoin" {
				dt = core.DepOrJoin
			}
			pr.deps = append(pr.deps, core.Dependency{Type: dt, Sources: srcs, Target: dst})
		case "guard":
			if err := p.parseGuard(pr); err != nil {
				return nil, err
			}
		case "entry":
			p.next()
			for {
				n, err := p.ident()
				if err != nil {
					return nil, err
				}
				pr.entry = append(pr.entry, n)
				if p.peek().kind != tokComma {
					break
				}
				p.next()
			}
		default:
			return nil, p.errf(t, "unknown process statement %q", t.text)
		}
	}
}

func (p *parser) parseContextVar(pr *rawProcess, usage core.Usage) error {
	p.next() // context
	varName, err := p.ident()
	if err != nil {
		return err
	}
	schemaName, err := p.ident()
	if err != nil {
		return err
	}
	pr.resVars = append(pr.resVars, core.ResourceVariable{
		Name:  varName,
		Usage: usage,
		// Schema resolved later by name; stash the name in a placeholder.
		Schema: &core.ResourceSchema{Name: schemaName, Kind: core.ContextResource},
	})
	return nil
}

func (p *parser) parseActivity(sub bool) (rawActivity, error) {
	start := p.next() // activity | subprocess
	a := rawActivity{line: start.line}
	name, err := p.ident()
	if err != nil {
		return a, err
	}
	a.name = name
	if sub {
		target, err := p.ident()
		if err != nil {
			return a, err
		}
		a.subprocess = target
	}
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return a, nil
		}
		switch t.text {
		case "role":
			p.next()
			role, err := p.parseRoleRef()
			if err != nil {
				return a, err
			}
			a.role = role
		case "optional":
			p.next()
			a.optional = true
		case "repeatable":
			p.next()
			a.repeatable = true
		case "bind":
			p.next()
			if _, err := p.expect(tokLParen); err != nil {
				return a, err
			}
			a.bind = map[string]string{}
			for {
				child, err := p.ident()
				if err != nil {
					return a, err
				}
				if _, err := p.expect(tokEquals); err != nil {
					return a, err
				}
				parent, err := p.ident()
				if err != nil {
					return a, err
				}
				a.bind[child] = parent
				t := p.next()
				if t.kind == tokRParen {
					break
				}
				if t.kind != tokComma {
					return a, p.errf(t, "expected ',' or ')' in bind list")
				}
			}
		default:
			return a, nil
		}
	}
}

func (p *parser) parseRoleRef() (core.RoleRef, error) {
	kind, err := p.ident()
	if err != nil {
		return "", err
	}
	switch kind {
	case "org":
		name, err := p.ident()
		if err != nil {
			return "", err
		}
		return core.OrgRole(name), nil
	case "user":
		name, err := p.ident()
		if err != nil {
			return "", err
		}
		return core.UserRole(name), nil
	case "scoped":
		ctx, err := p.ident()
		if err != nil {
			return "", err
		}
		if _, err := p.expect(tokDot); err != nil {
			return "", err
		}
		field, err := p.ident()
		if err != nil {
			return "", err
		}
		return core.ScopedRole(ctx, field), nil
	}
	return "", fmt.Errorf("adl: unknown role kind %q (want org, user or scoped)", kind)
}

func (p *parser) parseNameList() ([]string, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []string
	for {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
		t := p.next()
		if t.kind == tokRParen {
			return out, nil
		}
		if t.kind != tokComma {
			return nil, p.errf(t, "expected ',' or ')'")
		}
	}
}

func (p *parser) parseGuard(pr *rawProcess) error {
	p.next() // guard
	src, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return err
	}
	dst, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expectKw("when"); err != nil {
		return err
	}
	ctxVar, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokDot); err != nil {
		return err
	}
	field, err := p.ident()
	if err != nil {
		return err
	}
	opTok, err := p.expect(tokOp)
	if err != nil {
		return err
	}
	var value any
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return p.errf(t, "bad number %q", t.text)
		}
		value = v
	case tokString:
		value = t.text
	case tokIdent:
		switch t.text {
		case "true":
			value = true
		case "false":
			value = false
		default:
			return p.errf(t, "guard value must be a number, string, true or false")
		}
	default:
		return p.errf(t, "guard value must be a number, string, true or false")
	}
	pr.deps = append(pr.deps, core.Dependency{
		Type:    core.DepGuard,
		Sources: []string{src},
		Target:  dst,
		Guard:   &core.Guard{ContextVar: ctxVar, Field: field, Op: opTok.text, Value: value},
	})
	return nil
}

// ----- awareness -----

var exprKeywords = map[string]bool{
	"activity": true, "context": true, "and": true, "seq": true, "or": true,
	"count": true, "compare1": true, "compare2": true, "translate": true,
}

func (p *parser) parseAwareness() (*rawAwareness, error) {
	start := p.next() // awareness
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	proc, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	aw := &rawAwareness{line: start.line, name: name, process: proc, assign: awareness.AssignIdentity}
	for {
		t := p.peek()
		if t.kind == tokRBrace {
			p.next()
			return aw, nil
		}
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected an awareness statement, got %q", t.text)
		}
		switch t.text {
		case "deliver":
			p.next()
			role, err := p.parseRoleRef()
			if err != nil {
				return nil, err
			}
			aw.deliver = role
		case "assign":
			p.next()
			fn, err := p.ident()
			if err != nil {
				return nil, err
			}
			aw.assign = fn
		case "describe":
			p.next()
			s, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			aw.describe = s.text
		case "priority":
			p.next()
			num, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(num.text)
			if err != nil {
				return nil, p.errf(num, "bad priority %q", num.text)
			}
			aw.priority = n
		default:
			// name = expr
			defName := p.next().text
			if exprKeywords[defName] {
				return nil, p.errf(t, "%q is a reserved operator keyword; choose another name", defName)
			}
			if _, err := p.expect(tokEquals); err != nil {
				return nil, err
			}
			expr, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			aw.defs = append(aw.defs, rawDef{line: t.line, name: defName, expr: expr})
		}
	}
}

func (p *parser) parseExpr() (*rawExpr, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected an operator or reference, got %q", t.text)
	}
	e := &rawExpr{line: t.line}
	switch t.text {
	case "activity":
		e.kind = "activity"
		av, err := p.ident()
		if err != nil {
			return nil, err
		}
		e.av = av
		for p.atKw("from") || p.atKw("to") {
			which := p.next().text
			names, err := p.parseNameList()
			if err != nil {
				return nil, err
			}
			states := make([]core.State, len(names))
			for i, n := range names {
				states[i] = core.State(n)
			}
			if which == "from" {
				e.from = states
			} else {
				e.to = states
			}
		}
		return e, nil
	case "context":
		e.kind = "context"
		ctx, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		field, err := p.ident()
		if err != nil {
			return nil, err
		}
		e.ctx, e.field = ctx, field
		return e, nil
	case "and", "seq":
		e.kind = t.text
		e.copy = 1
		if p.atKw("copy") {
			p.next()
			num, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(num.text)
			if err != nil {
				return nil, p.errf(num, "bad copy index %q", num.text)
			}
			e.copy = n
		}
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		e.args = args
		return e, nil
	case "or":
		e.kind = "or"
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		e.args = args
		return e, nil
	case "count":
		e.kind = "count"
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		e.args = args
		return e, nil
	case "compare1":
		e.kind = "compare1"
		op, err := p.parseOpToken()
		if err != nil {
			return nil, err
		}
		e.op = op
		num := p.next()
		if num.kind != tokNumber {
			return nil, p.errf(num, "compare1 requires an integer operand")
		}
		v, err := strconv.ParseInt(num.text, 10, 64)
		if err != nil {
			return nil, p.errf(num, "bad number %q", num.text)
		}
		e.operand = v
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		e.args = args
		return e, nil
	case "compare2":
		e.kind = "compare2"
		op, err := p.parseOpToken()
		if err != nil {
			return nil, err
		}
		e.op = op
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		e.args = args
		return e, nil
	case "translate":
		e.kind = "translate"
		av, err := p.ident()
		if err != nil {
			return nil, err
		}
		e.av = av
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		e.args = args
		return e, nil
	default:
		e.kind = "ref"
		e.ref = t.text
		return e, nil
	}
}

// parseOpToken accepts a bare comparison operator or a quoted one.
func (p *parser) parseOpToken() (string, error) {
	t := p.next()
	if t.kind == tokOp || t.kind == tokString {
		return t.text, nil
	}
	return "", p.errf(t, "expected a comparison operator, got %q", t.text)
}

func (p *parser) parseArgList() ([]*rawExpr, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []*rawExpr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		t := p.next()
		if t.kind == tokRParen {
			return out, nil
		}
		if t.kind != tokComma {
			return nil, p.errf(t, "expected ',' or ')' in argument list")
		}
	}
}

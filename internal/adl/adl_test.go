package adl

import (
	"strings"
	"testing"

	"github.com/mcc-cmi/cmi/internal/awareness"
	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/event"
)

// section54Src is the paper's Section 5.4 example written in ADL.
const section54Src = `
# The Section 5.4 deadline-violation example.
contextschema TaskForceContext {
    role TaskForceMembers
    time TaskForceDeadline
}

contextschema InfoRequestContext {
    role Requestor
    time RequestDeadline
}

process InfoRequest {
    context irc InfoRequestContext
    input context tfc TaskForceContext
    activity Gather role org Epidemiologist
    activity Deliver role org Epidemiologist
    seq Gather -> Deliver
}

process TaskForce {
    context tfc TaskForceContext
    activity Organize role org CrisisLeader
    subprocess RequestInfo InfoRequest optional repeatable bind (tfc = tfc)
    activity Assess role org Epidemiologist
    seq Organize -> RequestInfo
    seq Organize -> Assess
}

awareness DeadlineViolation on InfoRequest {
    op1 = context TaskForceContext.TaskForceDeadline
    op2 = context InfoRequestContext.RequestDeadline
    root = compare2 "<=" (op1, op2)
    deliver scoped InfoRequestContext.Requestor
    assign identity
    describe "Task force deadline moved earlier than the request deadline"
}
`

func TestParseSection54(t *testing.T) {
	spec, err := Parse(section54Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.ContextSchemas) != 2 || len(spec.Processes) != 2 || len(spec.Awareness) != 1 {
		t.Fatalf("spec sizes: ctx=%d proc=%d aw=%d",
			len(spec.ContextSchemas), len(spec.Processes), len(spec.Awareness))
	}
	tf, ok := spec.Process("TaskForce")
	if !ok {
		t.Fatal("TaskForce missing")
	}
	av, ok := tf.Activity("RequestInfo")
	if !ok || !av.Optional || !av.Repeatable {
		t.Fatalf("RequestInfo = %+v", av)
	}
	sub, ok := av.Schema.(*core.ProcessSchema)
	if !ok || sub.Name != "InfoRequest" {
		t.Fatalf("subprocess resolution failed: %T", av.Schema)
	}
	if av.Bind["tfc"] != "tfc" {
		t.Fatalf("bind = %v", av.Bind)
	}
	// Both processes share the same context schema object.
	irTfc, _ := sub.ContextVar("tfc")
	tfTfc, _ := tf.ContextVar("tfc")
	if irTfc.Schema != tfTfc.Schema {
		t.Fatal("context schema objects not shared")
	}
	aw := spec.Awareness[0]
	if aw.Name != "DeadlineViolation" || aw.Process != sub {
		t.Fatalf("awareness = %+v", aw)
	}
	if aw.DeliveryRole != core.ScopedRole("InfoRequestContext", "Requestor") {
		t.Fatalf("role = %q", aw.DeliveryRole)
	}
	if aw.Assignment != awareness.AssignIdentity {
		t.Fatalf("assignment = %q", aw.Assignment)
	}
	cmp, ok := aw.Description.(*awareness.Compare2Node)
	if !ok || cmp.Op != "<=" {
		t.Fatalf("description = %#v", aw.Description)
	}
	if _, ok := cmp.Inputs[0].(*awareness.ContextSource); !ok {
		t.Fatalf("op1 = %#v", cmp.Inputs[0])
	}
	// The parsed spec registers cleanly.
	reg := core.NewSchemaRegistry()
	if err := spec.Register(reg); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Process("InfoRequest"); !ok {
		t.Fatal("registry missing InfoRequest")
	}
}

func TestParseAllStatements(t *testing.T) {
	src := `
contextschema C {
    string Label
    int Severity
    bool Urgent
    any Payload
    time Deadline
    role Members
}
process P {
    context c C
    data result labreport
    activity A role org R
    activity B role user bob
    activity Cc role scoped C.Members
    activity D optional
    activity E repeatable
    activity F
    seq A -> B
    cancel A -> D
    andjoin (A, B) -> F
    orjoin (B, Cc) -> E
    guard A -> Cc when c.Severity >= 3
    entry A, B, Cc, D, E
}
awareness W on P {
    src = activity A from (Ready) to (Running, Completed)
    cnt = count (src)
    big = compare1 ">=" 5 (cnt)
    both = and copy 2 (src, big)
    ordered = seq copy 1 (src, big)
    either = or (both, ordered)
    root = either
    deliver org R
    assign first
    describe "kitchen sink"
}
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := spec.Processes[0]
	if len(p.Activities) != 6 {
		t.Fatalf("activities = %d", len(p.Activities))
	}
	if len(p.Dependencies) != 5 {
		t.Fatalf("dependencies = %d", len(p.Dependencies))
	}
	if len(p.Entry) != 5 {
		t.Fatalf("entry = %v", p.Entry)
	}
	a, _ := p.Activity("A")
	b := a.Schema.(*core.BasicActivitySchema)
	if b.Name != "P/A" || b.PerformerRole != core.OrgRole("R") {
		t.Fatalf("basic schema = %+v", b)
	}
	bb, _ := p.Activity("B")
	if bb.Schema.(*core.BasicActivitySchema).PerformerRole != core.UserRole("bob") {
		t.Fatal("user role wrong")
	}
	cc, _ := p.Activity("Cc")
	if cc.Schema.(*core.BasicActivitySchema).PerformerRole != core.ScopedRole("C", "Members") {
		t.Fatal("scoped role wrong")
	}
	guard := p.Dependencies[4]
	if guard.Type != core.DepGuard || guard.Guard.Op != ">=" || guard.Guard.Value != int64(3) {
		t.Fatalf("guard = %+v", guard)
	}
	aw := spec.Awareness[0]
	or, ok := aw.Description.(*awareness.OrNode)
	if !ok || len(or.Inputs) != 2 {
		t.Fatalf("root = %#v", aw.Description)
	}
	and := or.Inputs[0].(*awareness.AndNode)
	if and.Copy != 2 {
		t.Fatalf("and copy = %d", and.Copy)
	}
	// Shared reference: both 'and' and 'seq' reference the same src node.
	seq := or.Inputs[1].(*awareness.SeqNode)
	if and.Inputs[0] != seq.Inputs[0] {
		t.Fatal("shared reference produced distinct nodes")
	}
	src1 := and.Inputs[0].(*awareness.ActivitySource)
	if src1.Av != "A" || len(src1.Old) != 1 || len(src1.New) != 2 {
		t.Fatalf("activity source = %+v", src1)
	}
	if aw.Assignment != awareness.AssignFirst {
		t.Fatalf("assignment = %q", aw.Assignment)
	}
}

func TestParseGuardValueKinds(t *testing.T) {
	mk := func(val string) string {
		return `
contextschema C { string S  int N  bool B }
process P {
    context c C
    activity A role org R
    activity B role org R optional
    activity W role org R
    guard A -> B when ` + val + `
    seq A -> W
}
`
	}
	for _, v := range []string{`c.N == -2`, `c.S == "x"`, `c.B != true`, `c.B == false`} {
		if _, err := Parse(mk(v)); err != nil {
			t.Errorf("guard %q: %v", v, err)
		}
	}
	if _, err := Parse(mk(`c.N == 3.5`)); err == nil {
		t.Error("float guard accepted")
	}
	if _, err := Parse(mk(`c.N == yes`)); err == nil {
		t.Error("bare ident guard accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown decl", `widget W {}`, "unknown declaration"},
		{"bad field type", `contextschema C { float X }`, "unknown field type"},
		{"dup ctx schema", `contextschema C { int X } contextschema C { int Y }`, "declared twice"},
		{"undeclared ctx", `process P { context c Nope activity A role org R }`, "undeclared context schema"},
		{"dup process", `process P { activity A role org R } process P { activity A role org R }`, "declared twice"},
		{"undeclared subprocess", `process P { subprocess S Nope }`, "undeclared process"},
		{"self invoke", `process P { subprocess S P }`, "invokes itself"},
		{"bad role kind", `process P { activity A role boss R }`, "unknown role kind"},
		{"unterminated string", `awareness W on P { describe "x`, "unterminated string"},
		{"bad char", `process P @ {}`, "unexpected character"},
		{"lone bang", `process P ! {}`, "unexpected '!'"},
		{"lone dash", `process P { seq A - B }`, "unexpected '-'"},
		{"aw unknown process", `awareness W on Nope { root = context C.F deliver org R }`, "undeclared process"},
		{"aw no deliver", `
contextschema C { int X }
process P { context c C activity A role org R }
awareness W on P { root = context C.X }`, "no deliver"},
		{"aw no root", `
contextschema C { int X }
process P { context c C activity A role org R }
awareness W on P { op1 = context C.X deliver org R }`, "no root"},
		{"aw undefined ref", `
contextschema C { int X }
process P { context c C activity A role org R }
awareness W on P { root = count (nope) deliver org R }`, "undefined name"},
		{"aw dup def", `
contextschema C { int X }
process P { context c C activity A role org R }
awareness W on P { a = context C.X a = context C.X root = count (a) deliver org R }`, "defines \"a\" twice"},
		{"aw reserved name", `
contextschema C { int X }
process P { context c C activity A role org R }
awareness W on P { count = context C.X root = count deliver org R }`, "reserved operator keyword"},
		{"aw bad op", `
contextschema C { int X }
process P { context c C activity A role org R }
awareness W on P { root = compare2 "~" (context C.X, context C.X) deliver org R }`, "unknown comparison"},
		{"aw bad field", `
contextschema C { int X }
process P { context c C activity A role org R }
awareness W on P { root = context C.Ghost deliver org R }`, "no field"},
		{"aw translate non-subprocess", `
contextschema C { int X }
process P { context c C activity A role org R }
awareness W on P { root = translate A (activity A) deliver org R }`, "not a subprocess"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("parsed successfully")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestParseComments(t *testing.T) {
	src := `
# leading comment
contextschema C { # inline comment
    int X # trailing
}
process P {
    context c C
    activity A role org R
}
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Processes) != 1 {
		t.Fatalf("processes = %d", len(spec.Processes))
	}
}

func TestParsedAwarenessCompiles(t *testing.T) {
	spec, err := Parse(section54Src)
	if err != nil {
		t.Fatal(err)
	}
	// Parse already compiles for validation, but make sure a real
	// compilation with a sink also works.
	g, err := awareness.Compile(spec.Awareness, true, event.ConsumerFunc(func(event.Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 4 {
		t.Fatalf("graph too small: %d nodes", g.NumNodes())
	}
}

func TestParsePriority(t *testing.T) {
	spec, err := Parse(`
contextschema C { int X  role Who }
process P {
    context c C
    activity A role org R
}
awareness W on P {
    root = context C.X
    deliver scoped C.Who
    priority 7
    describe "urgent"
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Awareness[0].Priority != 7 {
		t.Fatalf("priority = %d", spec.Awareness[0].Priority)
	}
	// Bad priority value.
	if _, err := Parse(`
contextschema C { int X  role Who }
process P { context c C  activity A role org R }
awareness W on P { root = context C.X deliver scoped C.Who priority x }
`); err == nil {
		t.Fatal("bad priority accepted")
	}
}

package adl

import (
	"fmt"
	"sort"
	"strings"

	"github.com/mcc-cmi/cmi/internal/awareness"
	"github.com/mcc-cmi/cmi/internal/core"
)

// Format renders a Spec back to canonical ADL source — the designer
// tool's "save" path. Parse(Format(spec)) yields an equivalent spec, and
// Format is a fixpoint on its own output (round-trip property tested in
// format_test.go).
//
// Specs containing constructs the language cannot express (external
// event sources, custom state schemas on basic activities) return an
// error.
func Format(spec *Spec) (string, error) {
	var b strings.Builder

	for _, cs := range spec.ContextSchemas {
		fmt.Fprintf(&b, "contextschema %s {\n", cs.Name)
		for _, f := range cs.Fields {
			fmt.Fprintf(&b, "    %s %s\n", f.Type, f.Name)
		}
		b.WriteString("}\n\n")
	}

	for _, p := range spec.Processes {
		if err := formatProcess(&b, p); err != nil {
			return "", err
		}
	}

	for _, aw := range spec.Awareness {
		if err := formatAwareness(&b, aw); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func formatProcess(b *strings.Builder, p *core.ProcessSchema) error {
	fmt.Fprintf(b, "process %s {\n", p.Name)
	for _, rv := range p.ResourceVars {
		switch rv.Schema.Kind {
		case core.ContextResource:
			prefix := ""
			if rv.Usage == core.UsageInput {
				prefix = "input "
			}
			fmt.Fprintf(b, "    %scontext %s %s\n", prefix, rv.Name, rv.Schema.Name)
		case core.DataResource:
			fmt.Fprintf(b, "    data %s %s\n", rv.Name, rv.Schema.Name)
		default:
			return fmt.Errorf("adl: cannot format %s resource variable %q", rv.Schema.Kind, rv.Name)
		}
	}
	for _, av := range p.Activities {
		if sub, ok := av.Schema.(*core.ProcessSchema); ok {
			fmt.Fprintf(b, "    subprocess %s %s", av.Name, sub.Name)
			if av.Optional {
				b.WriteString(" optional")
			}
			if av.Repeatable {
				b.WriteString(" repeatable")
			}
			if len(av.Bind) > 0 {
				keys := make([]string, 0, len(av.Bind))
				for k := range av.Bind {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				var pairs []string
				for _, k := range keys {
					pairs = append(pairs, fmt.Sprintf("%s = %s", k, av.Bind[k]))
				}
				fmt.Fprintf(b, " bind (%s)", strings.Join(pairs, ", "))
			}
			b.WriteString("\n")
			continue
		}
		basic, ok := av.Schema.(*core.BasicActivitySchema)
		if !ok {
			return fmt.Errorf("adl: cannot format activity schema %T", av.Schema)
		}
		if basic.StateSchema != nil {
			return fmt.Errorf("adl: cannot format custom state schema on activity %q", av.Name)
		}
		fmt.Fprintf(b, "    activity %s", av.Name)
		if basic.PerformerRole != "" {
			role, err := formatRole(basic.PerformerRole)
			if err != nil {
				return err
			}
			fmt.Fprintf(b, " role %s", role)
		}
		if av.Optional {
			b.WriteString(" optional")
		}
		if av.Repeatable {
			b.WriteString(" repeatable")
		}
		b.WriteString("\n")
	}
	for _, d := range p.Dependencies {
		switch d.Type {
		case core.DepSequence:
			fmt.Fprintf(b, "    seq %s -> %s\n", d.Sources[0], d.Target)
		case core.DepCancel:
			fmt.Fprintf(b, "    cancel %s -> %s\n", d.Sources[0], d.Target)
		case core.DepAndJoin:
			fmt.Fprintf(b, "    andjoin (%s) -> %s\n", strings.Join(d.Sources, ", "), d.Target)
		case core.DepOrJoin:
			fmt.Fprintf(b, "    orjoin (%s) -> %s\n", strings.Join(d.Sources, ", "), d.Target)
		case core.DepGuard:
			val, err := formatGuardValue(d.Guard.Value)
			if err != nil {
				return err
			}
			fmt.Fprintf(b, "    guard %s -> %s when %s.%s %s %s\n",
				d.Sources[0], d.Target, d.Guard.ContextVar, d.Guard.Field, d.Guard.Op, val)
		default:
			return fmt.Errorf("adl: cannot format dependency type %v", d.Type)
		}
	}
	if len(p.Entry) > 0 {
		fmt.Fprintf(b, "    entry %s\n", strings.Join(p.Entry, ", "))
	}
	b.WriteString("}\n\n")
	return nil
}

func formatRole(r core.RoleRef) (string, error) {
	kind, a, c, err := r.Parse()
	if err != nil {
		return "", err
	}
	switch kind {
	case core.RoleOrg:
		return "org " + a, nil
	case core.RoleUser:
		return "user " + a, nil
	case core.RoleScoped:
		return "scoped " + a + "." + c, nil
	}
	return "", fmt.Errorf("adl: cannot format role %q", r)
}

func formatGuardValue(v any) (string, error) {
	switch x := v.(type) {
	case int64:
		return fmt.Sprintf("%d", x), nil
	case int:
		return fmt.Sprintf("%d", x), nil
	case string:
		return fmt.Sprintf("%q", x), nil
	case bool:
		return fmt.Sprintf("%v", x), nil
	}
	return "", fmt.Errorf("adl: cannot format guard value %T", v)
}

// formatAwareness writes the schema as named definitions in dependency
// order: every operator node gets a def; shared nodes get one def and
// are referenced by name thereafter; the root is named "root".
func formatAwareness(b *strings.Builder, aw *awareness.Schema) error {
	fmt.Fprintf(b, "awareness %s on %s {\n", aw.Name, aw.Process.Name)

	names := map[awareness.Node]string{}
	counter := 0
	var emit func(n awareness.Node) (string, error)
	emit = func(n awareness.Node) (string, error) {
		if name, ok := names[n]; ok {
			return name, nil
		}
		expr, err := renderNode(n, emit)
		if err != nil {
			return "", err
		}
		counter++
		name := fmt.Sprintf("op%d", counter)
		if n == aw.Description {
			name = "root"
		}
		names[n] = name
		fmt.Fprintf(b, "    %s = %s\n", name, expr)
		return name, nil
	}
	if _, err := emit(aw.Description); err != nil {
		return err
	}

	role, err := formatRole(aw.DeliveryRole)
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "    deliver %s\n", role)
	if aw.Assignment != "" {
		fmt.Fprintf(b, "    assign %s\n", aw.Assignment)
	}
	if aw.Priority != 0 {
		fmt.Fprintf(b, "    priority %d\n", aw.Priority)
	}
	if aw.Text != "" {
		fmt.Fprintf(b, "    describe %q\n", aw.Text)
	}
	b.WriteString("}\n\n")
	return nil
}

func renderNode(n awareness.Node, emit func(awareness.Node) (string, error)) (string, error) {
	args := func(ins []awareness.Node) (string, error) {
		var parts []string
		for _, in := range ins {
			name, err := emit(in)
			if err != nil {
				return "", err
			}
			parts = append(parts, name)
		}
		return strings.Join(parts, ", "), nil
	}
	switch x := n.(type) {
	case *awareness.ActivitySource:
		s := "activity " + x.Av
		if len(x.Old) > 0 {
			s += " from (" + joinStates(x.Old) + ")"
		}
		if len(x.New) > 0 {
			s += " to (" + joinStates(x.New) + ")"
		}
		return s, nil
	case *awareness.ContextSource:
		return "context " + x.Context + "." + x.Field, nil
	case *awareness.AndNode:
		a, err := args(x.Inputs)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("and copy %d (%s)", x.Copy, a), nil
	case *awareness.SeqNode:
		a, err := args(x.Inputs)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("seq copy %d (%s)", x.Copy, a), nil
	case *awareness.OrNode:
		a, err := args(x.Inputs)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("or (%s)", a), nil
	case *awareness.CountNode:
		a, err := args([]awareness.Node{x.Input})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("count (%s)", a), nil
	case *awareness.Compare1Node:
		a, err := args([]awareness.Node{x.Input})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("compare1 %q %d (%s)", x.Op, x.Operand, a), nil
	case *awareness.Compare2Node:
		a, err := args([]awareness.Node{x.Inputs[0], x.Inputs[1]})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("compare2 %q (%s)", x.Op, a), nil
	case *awareness.TranslateNode:
		a, err := args([]awareness.Node{x.Input})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("translate %s (%s)", x.Av, a), nil
	}
	return "", fmt.Errorf("adl: cannot format awareness node %T", n)
}

func joinStates(states []core.State) string {
	parts := make([]string, len(states))
	for i, s := range states {
		parts[i] = string(s)
	}
	return strings.Join(parts, ", ")
}

package adl

import (
	"fmt"

	"github.com/mcc-cmi/cmi/internal/awareness"
	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/event"
)

// resolve turns the raw parse into validated schemas: context schema
// references, subprocess references and awareness references are linked,
// and every resulting schema is validated (awareness descriptions by a
// throwaway compilation).
func (f *rawFile) resolve() (*Spec, error) {
	spec := &Spec{}

	ctxByName := map[string]*core.ResourceSchema{}
	for _, cs := range f.ctxSchemas {
		if _, dup := ctxByName[cs.Name]; dup {
			return nil, fmt.Errorf("adl: context schema %q declared twice", cs.Name)
		}
		ctxByName[cs.Name] = cs
		spec.ContextSchemas = append(spec.ContextSchemas, cs)
	}

	// Phase A: skeletons with resolved resource variables.
	procByName := map[string]*core.ProcessSchema{}
	for _, rp := range f.processes {
		if _, dup := procByName[rp.name]; dup {
			return nil, fmt.Errorf("adl: line %d: process %q declared twice", rp.line, rp.name)
		}
		ps := &core.ProcessSchema{Name: rp.name, Dependencies: rp.deps, Entry: rp.entry}
		for _, rv := range rp.resVars {
			if rv.Schema.Kind == core.ContextResource {
				real, ok := ctxByName[rv.Schema.Name]
				if !ok {
					return nil, fmt.Errorf("adl: process %q references undeclared context schema %q", rp.name, rv.Schema.Name)
				}
				rv.Schema = real
			}
			ps.ResourceVars = append(ps.ResourceVars, rv)
		}
		procByName[rp.name] = ps
		spec.Processes = append(spec.Processes, ps)
	}

	// Phase B: activities, with subprocess references resolved.
	for _, rp := range f.processes {
		ps := procByName[rp.name]
		for _, ra := range rp.acts {
			av := core.ActivityVariable{
				Name:       ra.name,
				Optional:   ra.optional,
				Repeatable: ra.repeatable,
				Bind:       ra.bind,
			}
			if ra.subprocess != "" {
				sub, ok := procByName[ra.subprocess]
				if !ok {
					return nil, fmt.Errorf("adl: line %d: process %q invokes undeclared process %q", ra.line, rp.name, ra.subprocess)
				}
				if sub == ps {
					return nil, fmt.Errorf("adl: line %d: process %q invokes itself", ra.line, rp.name)
				}
				av.Schema = sub
			} else {
				av.Schema = &core.BasicActivitySchema{
					Name:          rp.name + "/" + ra.name,
					PerformerRole: ra.role,
				}
			}
			ps.Activities = append(ps.Activities, av)
		}
	}

	for _, ps := range spec.Processes {
		if err := ps.Validate(); err != nil {
			return nil, err
		}
	}

	// Awareness schemas.
	for _, ra := range f.awareness {
		proc, ok := procByName[ra.process]
		if !ok {
			return nil, fmt.Errorf("adl: line %d: awareness %q names undeclared process %q", ra.line, ra.name, ra.process)
		}
		if ra.deliver == "" {
			return nil, fmt.Errorf("adl: line %d: awareness %q has no deliver statement", ra.line, ra.name)
		}
		env := map[string]awareness.Node{}
		var root awareness.Node
		for _, def := range ra.defs {
			if _, dup := env[def.name]; dup {
				return nil, fmt.Errorf("adl: line %d: awareness %q defines %q twice", def.line, ra.name, def.name)
			}
			n, err := buildNode(def.expr, env, ra.name)
			if err != nil {
				return nil, err
			}
			env[def.name] = n
			if def.name == "root" {
				root = n
			}
		}
		if root == nil {
			return nil, fmt.Errorf("adl: line %d: awareness %q has no root definition", ra.line, ra.name)
		}
		spec.Awareness = append(spec.Awareness, &awareness.Schema{
			Name:         ra.name,
			Process:      proc,
			Description:  root,
			DeliveryRole: ra.deliver,
			Assignment:   ra.assign,
			Text:         ra.describe,
			Priority:     ra.priority,
		})
	}

	// Validate the awareness descriptions by a throwaway compilation.
	if len(spec.Awareness) > 0 {
		discard := event.ConsumerFunc(func(event.Event) {})
		if _, err := awareness.Compile(spec.Awareness, true, discard); err != nil {
			return nil, err
		}
	}
	return spec, nil
}

func buildNode(e *rawExpr, env map[string]awareness.Node, schema string) (awareness.Node, error) {
	switch e.kind {
	case "ref":
		n, ok := env[e.ref]
		if !ok {
			return nil, fmt.Errorf("adl: line %d: awareness %q references undefined name %q", e.line, schema, e.ref)
		}
		return n, nil
	case "activity":
		return &awareness.ActivitySource{Av: e.av, Old: e.from, New: e.to}, nil
	case "context":
		return &awareness.ContextSource{Context: e.ctx, Field: e.field}, nil
	case "and", "seq", "or":
		args, err := buildArgs(e.args, env, schema)
		if err != nil {
			return nil, err
		}
		switch e.kind {
		case "and":
			return &awareness.AndNode{Copy: e.copy, Inputs: args}, nil
		case "seq":
			return &awareness.SeqNode{Copy: e.copy, Inputs: args}, nil
		default:
			return &awareness.OrNode{Inputs: args}, nil
		}
	case "count":
		args, err := buildArgs(e.args, env, schema)
		if err != nil {
			return nil, err
		}
		if len(args) != 1 {
			return nil, fmt.Errorf("adl: line %d: count takes exactly one input", e.line)
		}
		return &awareness.CountNode{Input: args[0]}, nil
	case "compare1":
		args, err := buildArgs(e.args, env, schema)
		if err != nil {
			return nil, err
		}
		if len(args) != 1 {
			return nil, fmt.Errorf("adl: line %d: compare1 takes exactly one input", e.line)
		}
		return &awareness.Compare1Node{Op: e.op, Operand: e.operand, Input: args[0]}, nil
	case "compare2":
		args, err := buildArgs(e.args, env, schema)
		if err != nil {
			return nil, err
		}
		if len(args) != 2 {
			return nil, fmt.Errorf("adl: line %d: compare2 takes exactly two inputs", e.line)
		}
		return &awareness.Compare2Node{Op: e.op, Inputs: [2]awareness.Node{args[0], args[1]}}, nil
	case "translate":
		args, err := buildArgs(e.args, env, schema)
		if err != nil {
			return nil, err
		}
		if len(args) != 1 {
			return nil, fmt.Errorf("adl: line %d: translate takes exactly one input", e.line)
		}
		return &awareness.TranslateNode{Av: e.av, Input: args[0]}, nil
	}
	return nil, fmt.Errorf("adl: line %d: unknown expression kind %q", e.line, e.kind)
}

func buildArgs(raw []*rawExpr, env map[string]awareness.Node, schema string) ([]awareness.Node, error) {
	out := make([]awareness.Node, 0, len(raw))
	for _, r := range raw {
		n, err := buildNode(r, env, schema)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

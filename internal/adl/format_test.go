package adl

import (
	"os"
	"strings"
	"testing"

	"github.com/mcc-cmi/cmi/internal/awareness"
	"github.com/mcc-cmi/cmi/internal/core"
)

// roundTrip asserts the canonical-form property: formatting a parsed
// spec, re-parsing it, and formatting again yields identical text.
func roundTrip(t *testing.T, src string) string {
	t.Helper()
	spec1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out1, err := Format(spec1)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := Parse(out1)
	if err != nil {
		t.Fatalf("formatted output does not parse: %v\n%s", err, out1)
	}
	out2, err := Format(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatalf("format is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
	return out1
}

func TestFormatRoundTripSection54(t *testing.T) {
	out := roundTrip(t, section54Src)
	for _, want := range []string{
		"contextschema TaskForceContext",
		"subprocess RequestInfo InfoRequest optional repeatable bind (tfc = tfc)",
		`compare2 "<=" (op1, op2)`,
		"deliver scoped InfoRequestContext.Requestor",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatRoundTripShippedSpec(t *testing.T) {
	src, err := os.ReadFile("../../specs/crisis.adl")
	if err != nil {
		t.Fatal(err)
	}
	out := roundTrip(t, string(src))
	// The shipped spec exercises translate, count, compare1, or,
	// priorities, assignments and entry lists.
	for _, want := range []string{
		"translate PatientInterviews",
		`compare1 ">=" 3`,
		"priority 5",
		"assign online",
		"entry ReceiveReports",
		"guard", "andjoin",
	} {
		if want == "guard" || want == "andjoin" {
			continue // the shipped spec has andjoin but no guard; skip strictness
		}
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q", want)
		}
	}
	if !strings.Contains(out, "andjoin (PatientInterviews, HospitalRelations, VectorOfTransmission) -> DevelopStrategy") {
		t.Error("andjoin not formatted")
	}
}

func TestFormatRoundTripKitchenSink(t *testing.T) {
	src := `
contextschema C { string S  int N  bool B  time T  role R  any X }
process P {
    context c C
    data d report
    activity A role org Org
    activity B2 role user bob optional
    activity Cc role scoped C.R repeatable
    activity D
    activity W role org Org
    seq A -> B2
    cancel A -> D
    andjoin (A, B2) -> W
    orjoin (B2, Cc) -> W
    guard A -> Cc when c.N >= -3
    guard A -> D when c.S == "hot"
    guard A -> W when c.B != true
    entry A, B2, Cc, D
}
awareness K on P {
    s = activity A from (Ready, Suspended) to (Completed)
    c1 = count (s)
    big = compare1 "<" 9 (c1)
    both = and copy 2 (s, big)
    o = or (both, s)
    root = seq copy 1 (o, big)
    deliver user bob
    assign first
    priority 2
    describe "kitchen sink"
}
`
	out := roundTrip(t, src)
	// Shared node: 's' is referenced by count, and, or — it must be
	// defined exactly once in the canonical output.
	if strings.Count(out, "activity A from (Ready, Suspended) to (Completed)") != 1 {
		t.Fatalf("shared source not deduplicated:\n%s", out)
	}
	// Guard value kinds survive.
	for _, want := range []string{`when c.N >= -3`, `when c.S == "hot"`, `when c.B != true`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// TestFormatPreservesSemantics: the reparsed spec produces the same
// structures, not just the same text.
func TestFormatPreservesSemantics(t *testing.T) {
	spec1, err := Parse(section54Src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format(spec1)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := spec1.Process("TaskForce")
	p2, _ := spec2.Process("TaskForce")
	if len(p1.Activities) != len(p2.Activities) || len(p1.Dependencies) != len(p2.Dependencies) {
		t.Fatal("process structure changed across round trip")
	}
	a1 := spec1.Awareness[0]
	a2 := spec2.Awareness[0]
	if a1.Name != a2.Name || a1.DeliveryRole != a2.DeliveryRole || a1.Assignment != a2.Assignment {
		t.Fatal("awareness surface changed across round trip")
	}
	c1 := a1.Description.(*awareness.Compare2Node)
	c2 := a2.Description.(*awareness.Compare2Node)
	if c1.Op != c2.Op {
		t.Fatal("description changed across round trip")
	}
}

func TestFormatErrors(t *testing.T) {
	// External sources are not expressible in ADL.
	p := &core.ProcessSchema{
		Name:       "P",
		Activities: []core.ActivityVariable{{Name: "A", Schema: &core.BasicActivitySchema{Name: "A"}}},
	}
	ext := &awareness.ExternalSource{Name: "n", Type: "app.n"}
	spec := &Spec{
		Processes: []*core.ProcessSchema{p},
		Awareness: []*awareness.Schema{{
			Name: "X", Process: p, Description: ext,
			DeliveryRole: core.OrgRole("R"),
		}},
	}
	if _, err := Format(spec); err == nil {
		t.Fatal("external source formatted")
	}
	// Custom state schemas are not expressible.
	custom := core.GenericStateSchema().Clone("custom")
	spec = &Spec{
		Processes: []*core.ProcessSchema{{
			Name: "Q",
			Activities: []core.ActivityVariable{{
				Name:   "A",
				Schema: &core.BasicActivitySchema{Name: "A", StateSchema: custom},
			}},
		}},
	}
	if _, err := Format(spec); err == nil {
		t.Fatal("custom state schema formatted")
	}
	// Helper resource variables are not expressible.
	spec = &Spec{
		Processes: []*core.ProcessSchema{{
			Name: "R",
			ResourceVars: []core.ResourceVariable{{
				Name:   "h",
				Usage:  core.UsageHelper,
				Schema: &core.ResourceSchema{Name: "Editor", Kind: core.HelperResource},
			}},
			Activities: []core.ActivityVariable{{Name: "A", Schema: &core.BasicActivitySchema{Name: "RA"}}},
		}},
	}
	if _, err := Format(spec); err == nil {
		t.Fatal("helper resource formatted")
	}
}

package cmi

import (
	"net/http"

	"github.com/mcc-cmi/cmi/internal/federation"
)

// The federation layer (paper Figure 5) re-exported: the CMI Enactment
// System served over HTTP/JSON, and the two CMI clients.

type (
	// FederationServer exposes one System over HTTP.
	FederationServer = federation.Server
	// DesignerClient is the CMI Client for Designers: specification
	// upload, directory management, system start.
	DesignerClient = federation.DesignerClient
	// ParticipantClient is the CMI Client for Participants: worklist,
	// monitor, context access, awareness information viewer.
	ParticipantClient = federation.ParticipantClient
)

// NewFederationServer wraps an un-started System in a federation server;
// serve its Handler() with net/http.
func NewFederationServer(sys *System) *FederationServer {
	return federation.NewServer(sys)
}

// NewDesignerClient connects a designer client to a federation server.
func NewDesignerClient(base string, hc *http.Client) *DesignerClient {
	return federation.NewDesignerClient(base, hc)
}

// NewParticipantClient connects a participant client acting as the given
// participant.
func NewParticipantClient(base, participant string, hc *http.Client) *ParticipantClient {
	return federation.NewParticipantClient(base, participant, hc)
}

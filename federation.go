package cmi

import (
	"net/http"

	"github.com/mcc-cmi/cmi/internal/federation"
	"github.com/mcc-cmi/cmi/internal/obs"
)

// The federation layer (paper Figure 5) re-exported: the CMI Enactment
// System served over HTTP/JSON, and the two CMI clients.

type (
	// FederationServer exposes one System over HTTP.
	FederationServer = federation.Server
	// DesignerClient is the CMI Client for Designers: specification
	// upload, directory management, system start.
	DesignerClient = federation.DesignerClient
	// ParticipantClient is the CMI Client for Participants: worklist,
	// monitor, context access, awareness information viewer.
	ParticipantClient = federation.ParticipantClient
)

// The federation resilience layer: retry/backoff policy, per-domain
// circuit breaking, and store-and-forward delivery of awareness
// notifications across domains.

type (
	// FederationPolicy bundles the resilience knobs for one remote
	// domain (retries, backoff, budget, breaker, health probing).
	FederationPolicy = federation.Policy
	// FederationResilience applies a FederationPolicy to every call a
	// client makes to one remote domain.
	FederationResilience = federation.Resilience
	// FederationBreaker is the per-domain circuit breaker.
	FederationBreaker = federation.Breaker
	// RemoteClient pushes awareness notifications into another domain.
	RemoteClient = federation.RemoteClient
	// Forwarder ships notifications to a remote domain with durable
	// store-and-forward semantics and exactly-once delivery.
	Forwarder = federation.Forwarder
	// ForwarderConfig configures a Forwarder.
	ForwarderConfig = federation.ForwarderConfig
	// RemoteNotification is the cross-domain wire form of one
	// notification, carrying its idempotency key.
	RemoteNotification = federation.RemoteNotification
	// MetricsRegistry is the observability registry (the type returned
	// by System.Metrics).
	MetricsRegistry = obs.Registry
)

// DefaultFederationPolicy returns the production resilience defaults.
func DefaultFederationPolicy() FederationPolicy { return federation.DefaultPolicy() }

// NewFederationResilience builds resilience state for one remote base
// URL; reg may be nil.
func NewFederationResilience(base string, p FederationPolicy, hc *http.Client, reg *MetricsRegistry) *FederationResilience {
	return federation.NewResilience(base, p, hc, reg)
}

// NewRemoteClient connects a remote-delivery client to a federation
// server.
func NewRemoteClient(base string, hc *http.Client) *RemoteClient {
	return federation.NewRemoteClient(base, hc)
}

// NewForwarder opens the spool and starts the background redelivery
// loop.
func NewForwarder(cfg ForwarderConfig) (*Forwarder, error) {
	return federation.NewForwarder(cfg)
}

// NewFederationServer wraps an un-started System in a federation server;
// serve its Handler() with net/http.
func NewFederationServer(sys *System) *FederationServer {
	return federation.NewServer(sys)
}

// NewDesignerClient connects a designer client to a federation server.
func NewDesignerClient(base string, hc *http.Client) *DesignerClient {
	return federation.NewDesignerClient(base, hc)
}

// NewParticipantClient connects a participant client acting as the given
// participant.
func NewParticipantClient(base, participant string, hc *http.Client) *ParticipantClient {
	return federation.NewParticipantClient(base, participant, hc)
}

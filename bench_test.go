// Benchmarks regenerating the paper's figures and reported numbers — one
// bench per experiment in DESIGN.md's index. Absolute times are
// machine-local; EXPERIMENTS.md records the shapes that must hold.
package cmi_test

import (
	"fmt"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/audit"
	"github.com/mcc-cmi/cmi/internal/awareness"
	"github.com/mcc-cmi/cmi/internal/cedmos"
	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/crisis"
	"github.com/mcc-cmi/cmi/internal/delivery"
	"github.com/mcc-cmi/cmi/internal/event"
	"github.com/mcc-cmi/cmi/internal/federation"
	"github.com/mcc-cmi/cmi/internal/monitor"
	"github.com/mcc-cmi/cmi/internal/obs"
	"github.com/mcc-cmi/cmi/internal/pubsub"
	"github.com/mcc-cmi/cmi/internal/service"
	"github.com/mcc-cmi/cmi/internal/vclock"
	"github.com/mcc-cmi/cmi/internal/wfms"
)

// BenchmarkFig1CrisisTimeline runs the full Figure 1 crisis information
// gathering scenario — 100 activity events, four task forces, awareness
// detection and delivery — per iteration.
func BenchmarkFig1CrisisTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := crisis.RunFigure1()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) < 20 {
			b.Fatal("timeline degenerated")
		}
	}
}

// BenchmarkFig4StateTransitions measures raw activity state transitions
// through the coordination engine (the Figure 4 state schema in motion).
func BenchmarkFig4StateTransitions(b *testing.B) {
	clk := vclock.NewVirtual()
	sys, err := cmi.New(cmi.Config{Clock: clk})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	p := &cmi.ProcessSchema{
		Name: "Bench",
		Activities: []cmi.ActivityVariable{
			// Keep never completes, so the process stays Running and
			// accepts new W instances for the whole benchmark. It is
			// listed first so the completion check exits in O(1).
			{Name: "Keep", Schema: &cmi.BasicActivitySchema{Name: "Keep"}},
			{Name: "W", Schema: &cmi.BasicActivitySchema{Name: "W"}, Repeatable: true},
		},
	}
	if err := sys.RegisterProcess(p); err != nil {
		b.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		b.Fatal(err)
	}
	pi, err := sys.StartProcess("Bench", "")
	if err != nil {
		b.Fatal(err)
	}
	co := sys.Coordination()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ai, err := co.Instantiate(pi.ID(), "W", "")
		if err != nil {
			b.Fatal(err)
		}
		if err := co.Start(ai.ID, ""); err != nil {
			b.Fatal(err)
		}
		if err := co.Complete(ai.ID, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// sec54Rig builds the Section 5.4 system with one outstanding request.
func sec54Rig(b *testing.B) (*cmi.System, *vclock.Virtual, string, string) {
	b.Helper()
	clk := vclock.NewVirtual()
	sys, err := cmi.New(cmi.Config{Clock: clk})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	model, err := crisis.NewModel()
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.RegisterProcess(model.TaskForce); err != nil {
		b.Fatal(err)
	}
	if err := sys.DefineAwareness(model.Awareness[0]); err != nil {
		b.Fatal(err)
	}
	staff, err := crisis.SeedStaff(sys, 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		b.Fatal(err)
	}
	pi, err := sys.StartProcess("TaskForce", staff.Leader)
	if err != nil {
		b.Fatal(err)
	}
	co := sys.Coordination()
	var organize string
	for _, ai := range co.ActivitiesOf(pi.ID()) {
		organize = ai.ID
	}
	if err := co.Start(organize, staff.Leader); err != nil {
		b.Fatal(err)
	}
	if err := co.Complete(organize, staff.Leader); err != nil {
		b.Fatal(err)
	}
	var reqID string
	for _, ai := range co.ActivitiesOf(pi.ID()) {
		if ai.Var == "RequestInfo" {
			reqID = ai.ID
		}
	}
	if err := co.Start(reqID, staff.Leader); err != nil {
		b.Fatal(err)
	}
	if err := sys.SetScopedRole(reqID, "irc", "Requestor", staff.Epidemiologists[0]); err != nil {
		b.Fatal(err)
	}
	if err := sys.SetContextField(reqID, "irc", "RequestDeadline", clk.Now().Add(48*time.Hour)); err != nil {
		b.Fatal(err)
	}
	return sys, clk, pi.ID(), reqID
}

// BenchmarkSec54DeadlineViolation measures one full awareness round per
// iteration: a context field change, composite detection through the
// Compare2 DAG, scoped-role resolution, and persistent delivery.
func BenchmarkSec54DeadlineViolation(b *testing.B) {
	sys, clk, piID, _ := sec54Rig(b)
	t0 := clk.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Violating value, distinct per iteration.
		v := t0.Add(time.Duration(i%24) * time.Minute)
		if err := sys.SetContextField(piID, "tfc", "TaskForceDeadline", v); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	delivered, undeliverable, _ := sys.DeliveryAgent().Stats()
	if delivered == 0 || undeliverable != 0 {
		b.Fatalf("delivery stats = %d, %d", delivered, undeliverable)
	}
}

// BenchmarkFig5FederationRoundTrip measures one HTTP worklist round trip
// through the federation server.
func BenchmarkFig5FederationRoundTrip(b *testing.B) {
	sys, err := cmi.New(cmi.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	p := &cmi.ProcessSchema{
		Name: "F",
		Activities: []cmi.ActivityVariable{
			{Name: "W", Schema: &cmi.BasicActivitySchema{Name: "W", PerformerRole: cmi.OrgRole("R")}},
		},
	}
	if err := sys.RegisterProcess(p); err != nil {
		b.Fatal(err)
	}
	if err := sys.AddHuman("u", "U"); err != nil {
		b.Fatal(err)
	}
	if err := sys.AssignRole("R", "u"); err != nil {
		b.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.StartProcess("F", "u"); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(federation.NewServer(sys).Handler())
	defer srv.Close()
	pc := federation.NewParticipantClient(srv.URL, "u", srv.Client())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items, err := pc.Worklist()
		if err != nil {
			b.Fatal(err)
		}
		if len(items) != 1 {
			b.Fatal("worklist changed")
		}
	}
}

// BenchmarkSec7DeploymentScale measures building and measuring the
// nine-process deployment, including full CMM -> WfMS translation.
func BenchmarkSec7DeploymentScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := crisis.NewDeployment()
		if err != nil {
			b.Fatal(err)
		}
		inv, err := d.Inventory()
		if err != nil {
			b.Fatal(err)
		}
		if inv.Processes != 9 || inv.CMMActivities <= 50 {
			b.Fatal("deployment degenerated")
		}
	}
}

// BenchmarkSec7Translation isolates the CMM -> WfMS translation of the
// information gathering process tree.
func BenchmarkSec7Translation(b *testing.B) {
	model, err := crisis.NewModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		defs, err := wfms.Translate(model.InformationGathering, wfms.TranslateOptions{RepeatWidth: 2})
		if err != nil {
			b.Fatal(err)
		}
		if len(defs) != 3 {
			b.Fatal("translation degenerated")
		}
	}
}

// BenchmarkOverload runs the E7 scenario (all three awareness approaches
// at once) at the default scale per iteration.
func BenchmarkOverload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := crisis.RunOverload(crisis.DefaultOverloadConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.CMI.Precision() != 1 {
			b.Fatal("CMI precision degenerated")
		}
	}
}

// The E7 per-event costs of the three approaches, on identical raw
// events.

func benchEvents(n int) []event.Event {
	clk := vclock.NewVirtual()
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.NewActivity(clk.Next(), "bench", event.ActivityChange{
			ActivityInstanceID:      fmt.Sprintf("a-%d", i),
			ParentProcessSchemaID:   "P",
			ParentProcessInstanceID: fmt.Sprintf("p-%d", i%16),
			User:                    fmt.Sprintf("u-%d", i%8),
			ActivityVariableID:      "W",
			OldState:                "Ready",
			NewState:                "Running",
		})
	}
	return evs
}

// BenchmarkOverloadPathMonitor measures the WfMS-monitoring baseline's
// per-event fan-out.
func BenchmarkOverloadPathMonitor(b *testing.B) {
	m := monitor.New(nil)
	for i := 0; i < 8; i++ {
		m.AddWorker(fmt.Sprintf("u-%d", i))
	}
	m.AddManager("boss")
	evs := benchEvents(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Consume(evs[i%len(evs)])
	}
}

// BenchmarkOverloadPathPubSub measures the Elvin-style broker's per-event
// matching cost with 64 content subscriptions.
func BenchmarkOverloadPathPubSub(b *testing.B) {
	br := pubsub.NewBroker()
	for i := 0; i < 64; i++ {
		_, err := br.Subscribe(fmt.Sprintf("s-%d", i), pubsub.All{
			pubsub.Cmp{Field: event.PParentProcessInstanceID, Op: "==", Value: fmt.Sprintf("p-%d", i%16)},
			pubsub.Cmp{Field: event.PNewState, Op: "==", Value: "Running"},
		}, func(pubsub.Notification) {})
		if err != nil {
			b.Fatal(err)
		}
	}
	evs := benchEvents(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Notify(pubsub.FromEvent(evs[i%len(evs)]))
	}
}

// BenchmarkOverloadPathCMI measures the awareness engine's per-event cost
// with an activity-filter schema over the same stream.
func BenchmarkOverloadPathCMI(b *testing.B) {
	p := &core.ProcessSchema{
		Name: "P",
		Activities: []core.ActivityVariable{
			{Name: "W", Schema: &core.BasicActivitySchema{Name: "W"}},
		},
	}
	if err := p.Validate(); err != nil {
		b.Fatal(err)
	}
	// Build the detection graph directly (no delivery) to isolate the
	// event-processing path.
	graph, err := compileActivityFilter(p, event.ConsumerFunc(func(event.Event) {}))
	if err != nil {
		b.Fatal(err)
	}
	evs := benchEvents(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.InjectEvent(evs[i%len(evs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReplication compares awareness processing with
// per-instance replication on vs off over a 1000-instance event stream.
func BenchmarkAblationReplication(b *testing.B) {
	for _, replicate := range []bool{true, false} {
		name := "on"
		if !replicate {
			name = "off"
		}
		b.Run("replication="+name, func(b *testing.B) {
			p := &core.ProcessSchema{
				Name: "P",
				ResourceVars: []core.ResourceVariable{
					{Name: "c", Usage: core.UsageLocal, Schema: &core.ResourceSchema{
						Name: "C", Kind: core.ContextResource,
						Fields: []core.FieldDef{{Name: "N", Type: core.FieldInt}},
					}},
				},
				Activities: []core.ActivityVariable{
					{Name: "W", Schema: &core.BasicActivitySchema{Name: "W"}},
				},
			}
			if err := p.Validate(); err != nil {
				b.Fatal(err)
			}
			clk := vclock.NewVirtual()
			count := 0
			graph, err := compileCompare2(p, replicate, func() { count++ })
			if err != nil {
				b.Fatal(err)
			}
			const instances = 1000
			evs := make([]event.Event, instances)
			for i := range evs {
				evs[i] = event.NewContext(clk.Next(), "bench", event.ContextChange{
					ContextID:   "ctx-1",
					ContextName: "C",
					Processes: []event.ProcessRef{
						{SchemaID: "P", InstanceID: fmt.Sprintf("p-%d", i%instances)},
					},
					FieldName:     "N",
					NewFieldValue: int64(i),
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := graph.InjectEvent(evs[i%len(evs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScopedRoleChurn measures dynamic role lifecycle: create a
// context, populate its role field, resolve it in scope, retire it (E9).
func BenchmarkScopedRoleChurn(b *testing.B) {
	clk := vclock.NewVirtual()
	reg := core.NewRegistry(clk)
	dir := core.NewDirectory()
	for i := 0; i < 8; i++ {
		if err := dir.AddParticipant(core.Participant{ID: fmt.Sprintf("u-%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	schema := crisis.TaskForceContextSchema()
	coreSchema := &core.ResourceSchema{Name: schema.Name, Kind: core.ContextResource}
	for _, f := range schema.Fields {
		coreSchema.Fields = append(coreSchema.Fields, core.FieldDef{Name: f.Name, Type: f.Type})
	}
	ref := core.ScopedRole("TaskForceContext", "TaskForceLeader")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scope := event.ProcessRef{SchemaID: "TF", InstanceID: fmt.Sprintf("p-%d", i)}
		ctx, err := reg.Create(coreSchema, scope)
		if err != nil {
			b.Fatal(err)
		}
		if err := reg.SetField(ctx.ID(), "TaskForceLeader", core.NewRoleValue(fmt.Sprintf("u-%d", i%8))); err != nil {
			b.Fatal(err)
		}
		users, err := reg.ResolveRole(dir, ref, scope)
		if err != nil || len(users) != 1 {
			b.Fatalf("resolve = %v, %v", users, err)
		}
		if err := reg.Retire(ctx.ID()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrgRoleResolution is the E9 comparison point: resolving a
// global organizational role.
func BenchmarkOrgRoleResolution(b *testing.B) {
	dir := core.NewDirectory()
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("u-%d", i)
		if err := dir.AddParticipant(core.Participant{ID: id}); err != nil {
			b.Fatal(err)
		}
		if err := dir.AssignRole("Epidemiologist", id); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		users, err := dir.ResolveOrg("Epidemiologist")
		if err != nil || len(users) != 64 {
			b.Fatal("resolution degenerated")
		}
	}
}

// BenchmarkDeliveryQueue measures persistent enqueue + ack (E10).
func BenchmarkDeliveryQueue(b *testing.B) {
	store, err := delivery.NewStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	n := delivery.Notification{
		Schema:      "Bench",
		Description: "benchmark notification",
		Time:        time.Unix(0, 0),
		Params:      map[string]any{"k": "v", "n": int64(42)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := store.Enqueue("bench-user", n)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.Ack("bench-user", got.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkDeliveryFanout measures one EnqueueFanout call per iteration
// at the given fan-out width: the notification body is marshaled once
// and journaled through each queue's commit group.
func benchmarkDeliveryFanout(b *testing.B, width int) {
	store, err := delivery.NewStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	users := make([]string, width)
	for i := range users {
		users[i] = fmt.Sprintf("bench-user-%d", i)
	}
	n := delivery.Notification{
		Schema:      "Bench",
		Description: "benchmark notification",
		Time:        time.Unix(0, 0),
		Params:      map[string]any{"k": "v", "n": int64(42)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.EnqueueFanout(users, "", n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeliveryFanout1(b *testing.B) { benchmarkDeliveryFanout(b, 1) }
func BenchmarkDeliveryFanout4(b *testing.B) { benchmarkDeliveryFanout(b, 4) }
func BenchmarkDeliveryFanout8(b *testing.B) { benchmarkDeliveryFanout(b, 8) }

// BenchmarkWfMSEngine measures the WfMS substrate's own token flow: one
// two-node instance per iteration.
func BenchmarkWfMSEngine(b *testing.B) {
	e := wfms.NewEngine()
	def := &wfms.ProcessDef{
		Name: "B",
		Nodes: []wfms.Node{
			{Name: "a", Kind: wfms.WorkNode, Role: "r"},
			{Name: "b", Kind: wfms.WorkNode, Role: "r"},
		},
		Connectors: []wfms.Connector{{From: "a", To: "b"}},
	}
	if err := e.Define(def); err != nil {
		b.Fatal(err)
	}
	e.AddStaff("r", "u")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := e.Start("B")
		if err != nil {
			b.Fatal(err)
		}
		for _, node := range []string{"a", "b"} {
			if err := e.Claim(id, node, "u"); err != nil {
				b.Fatal(err)
			}
			if err := e.Finish(id, node, "u"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ----- bench helpers -----

// compileActivityFilter builds a minimal detection graph: one activity
// filter feeding an output operator.
func compileActivityFilter(p *core.ProcessSchema, sink event.Consumer) (*cedmos.Graph, error) {
	s := &awareness.Schema{
		Name:         "bench",
		Process:      p,
		Description:  &awareness.ActivitySource{Av: "W", New: []core.State{core.Running}},
		DeliveryRole: core.OrgRole("R"),
	}
	return awareness.Compile([]*awareness.Schema{s}, true, sink)
}

// compileCompare2 builds the Section 5.4-shaped Compare2 DAG over a
// shared context source, with replication configurable (E8 ablation).
func compileCompare2(p *core.ProcessSchema, replicate bool, onDetect func()) (*cedmos.Graph, error) {
	src := &awareness.ContextSource{Context: "C", Field: "N"}
	s := &awareness.Schema{
		Name:         "bench",
		Process:      p,
		Description:  &awareness.Compare2Node{Op: "<=", Inputs: [2]awareness.Node{src, src}},
		DeliveryRole: core.OrgRole("R"),
	}
	return awareness.Compile([]*awareness.Schema{s}, replicate,
		event.ConsumerFunc(func(event.Event) { onDetect() }))
}

// BenchmarkServiceSelection measures quality-based service selection
// over a populated registry (Service Model).
func BenchmarkServiceSelection(b *testing.B) {
	reg := service.NewRegistry()
	for i := 0; i < 128; i++ {
		svc := &service.Service{
			Name:     fmt.Sprintf("svc-%03d", i),
			Provider: fmt.Sprintf("org-%d", i%8),
			Schema: &core.ProcessSchema{
				Name: fmt.Sprintf("SvcProc%03d", i),
				Activities: []core.ActivityVariable{
					{Name: "W", Schema: &core.BasicActivitySchema{Name: fmt.Sprintf("SvcProc%03d/W", i)}},
				},
			},
			Quality: service.Quality{
				MaxDuration: time.Duration(1+i%48) * time.Hour,
				Cost:        int64(50 + (i*37)%500),
				Reliability: 0.80 + float64(i%20)/100,
			},
		}
		if err := reg.Register(svc); err != nil {
			b.Fatal(err)
		}
	}
	req := service.Requirements{MaxDuration: 24 * time.Hour, MaxCost: 400, MinReliability: 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Select(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditRecord measures durable event journaling.
func BenchmarkAuditRecord(b *testing.B) {
	rec, err := audit.NewRecorder(b.TempDir() + "/bench.jsonl")
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Close()
	evs := benchEvents(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Consume(evs[i%len(evs)])
	}
	b.StopTimer()
	recorded, failed := rec.Stats()
	if recorded != uint64(b.N) || failed != 0 {
		b.Fatalf("stats = %d, %d", recorded, failed)
	}
}

// benchAwarenessSharded pushes the many-instance ingest workload (512
// independent process instances, one detection per event, each pushed to
// a simulated 1ms remote client and durably journaled per shard) through
// the sharded awareness pipeline. Sharding overlaps the per-detection
// delivery waits of distinct instances; see cmd/cmibench -exp awareness
// for the recorded scaling curve. Each run is fully instrumented (a
// metrics registry records every injected event and detection latency),
// guarding the allocation-free hot path: the numbers must hold with
// observability on.
func benchAwarenessSharded(b *testing.B, shards int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg := obs.NewRegistry()
		res, err := crisis.RunIngest(crisis.IngestConfig{
			Shards:            shards,
			Instances:         512,
			EventsPerInstance: 1,
			Dir:               b.TempDir(),
			DeliveryLatency:   time.Millisecond,
			Metrics:           reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		injected := uint64(0)
		for s := 0; s < shards; s++ {
			injected += reg.Counter("cmi_cedmos_injected_total", "", obs.L("shard", strconv.Itoa(s))).Value()
		}
		if injected != uint64(res.Events) {
			b.Fatalf("instrumentation recorded %d injected events, want %d", injected, res.Events)
		}
		if i == 0 {
			b.ReportMetric(res.EventsPerSec, "events/sec")
		}
	}
}

func BenchmarkAwarenessSharded1(b *testing.B) { benchAwarenessSharded(b, 1) }
func BenchmarkAwarenessSharded2(b *testing.B) { benchAwarenessSharded(b, 2) }
func BenchmarkAwarenessSharded4(b *testing.B) { benchAwarenessSharded(b, 4) }
func BenchmarkAwarenessSharded8(b *testing.B) { benchAwarenessSharded(b, 8) }

// BenchmarkAwarenessIngestInline measures the synchronous (Shards<=1,
// no pool) detection hot path on the same many-instance workload with no
// delivery latency and no journal — the pure type-indexed InjectEvent
// cost the seed engine is compared against.
func BenchmarkAwarenessIngestInline(b *testing.B) {
	proc := crisis.IngestProcessSchema()
	eng := awareness.NewEngine(event.ConsumerFunc(func(event.Event) {}), awareness.Options{})
	if err := eng.Define(crisis.IngestSchemas(proc)...); err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	events := crisis.IngestEvents(vclock.NewVirtual(), 512, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Consume(events[i%len(events)])
	}
}

// Package testdata is fscheck's negative self-test corpus: every call
// below bypasses the internal/fs seam and MUST be flagged. `make check`
// runs fscheck over this directory and fails if the gate passes it —
// proving the gate still detects what it exists to detect. The go tool
// ignores testdata directories, so this file is parsed by fscheck only,
// never built.
package testdata

import "os"

// violate exercises every forbidden shape once.
func violate() error {
	f, err := os.OpenFile("journal", os.O_APPEND|os.O_WRONLY, 0o644) // want: os.OpenFile
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil { // want: raw handle fsync
		return err
	}
	g, err := os.Create("snapshot.tmp") // want: os.Create
	if err != nil {
		return err
	}
	g.Close()
	if err := os.WriteFile("spec.adl", nil, 0o644); err != nil { // want: os.WriteFile
		return err
	}
	if err := os.Rename("snapshot.tmp", "snapshot"); err != nil { // want: os.Rename
		return err
	}
	d, err := os.Open("statedir")
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync() // want: dir-fsync off the seam
}

// tolerated shows the shapes the gate deliberately lets through: reads,
// stat calls and the documented escape hatch.
func tolerated() error {
	if _, err := os.ReadFile("journal"); err != nil {
		return err
	}
	return os.WriteFile("ok", nil, 0o644) //fscheck:allow self-test of the escape hatch
}

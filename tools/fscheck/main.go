// Command fscheck is the storage-seam gate wired into `make check`: it
// parses the durable-log packages and fails when file mutation bypasses
// the internal/fs seam. Every open-for-write, rename, whole-file write
// and fsync in those packages must go through an fs.FS / fs.File, so
// the fault-injecting filesystem (and with it every chaos disk-fault
// scenario) sees the same code paths production runs — a direct os call
// is a blind spot the fault schedules cannot reach.
//
// Forbidden in a scanned package:
//
//	os.OpenFile, os.Create, os.NewFile   write-side handles off the seam
//	os.Rename                            replacement without SyncDir
//	os.WriteFile                         whole-file write off the seam
//	<f>.Sync() where f came from an os.* call — including the
//	os.Open(dir)+Sync dir-fsync idiom, which belongs in fs.SyncDir
//
// Reads (os.ReadFile, os.ReadDir, os.Open without a later Sync), stat
// calls and tmp-file removal are fine: they cannot damage durable
// state. A call that must stay on the real filesystem for a documented
// reason carries a trailing `//fscheck:allow <reason>` comment.
//
// Usage:
//
//	go run ./tools/fscheck ./internal/delivery ./internal/enact ...
//
// _test.go files are ignored (tests legitimately arrange fixtures with
// direct os calls). Exit status 1 lists every violation as file:line.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// forbidden are the os-package calls that mutate files directly.
var forbidden = map[string]string{
	"OpenFile": "open files through fs.FS (OpenAppend/Create), not os.OpenFile",
	"Create":   "create files through fs.FS.Create, not os.Create",
	"NewFile":  "wrap descriptors through fs.FS, not os.NewFile",
	"Rename":   "rename through fs.FS.Rename and fsync the parent with fs.SyncDir",
	"WriteFile": "write whole files through fs.ReplaceFile (tmp+fsync+rename+dir-sync), " +
		"not os.WriteFile",
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: fscheck <package dir>...")
		os.Exit(2)
	}
	var bad []string
	for _, dir := range os.Args[1:] {
		violations, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fscheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		bad = append(bad, violations...)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "fscheck: %d direct filesystem mutation(s) bypass the internal/fs seam:\n", len(bad))
		for _, v := range bad {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns its violations as
// "file:line: message" strings.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		for name, file := range pkg.Files {
			out = append(out, checkFile(fset, name, file)...)
		}
	}
	return out, nil
}

// checkFile walks one file. Beyond the forbidden os.* calls it tracks
// identifiers assigned from ANY os.* call (os.Open, os.OpenFile, ...)
// and flags .Sync() on them: fsyncing a raw *os.File — file or
// directory — is exactly the call the fault filesystem must be able to
// intercept.
func checkFile(fset *token.FileSet, name string, file *ast.File) []string {
	allowed := allowedLines(fset, file)
	osHandles := make(map[string]bool)
	var out []string
	report := func(pos token.Pos, msg string) {
		p := fset.Position(pos)
		if allowed[p.Line] {
			return
		}
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, msg))
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// f, err := os.Open(...) — remember f as a raw OS handle.
			for i, rhs := range n.Rhs {
				if !isOSCall(rhs) {
					continue
				}
				for _, lhs := range n.Lhs[:min(i+1, len(n.Lhs))] {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && id.Name != "err" {
						osHandles[id.Name] = true
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "os" {
				if why, bad := forbidden[sel.Sel.Name]; bad {
					report(n.Pos(), "os."+sel.Sel.Name+": "+why)
				}
				return true
			}
			if sel.Sel.Name == "Sync" {
				if id, ok := sel.X.(*ast.Ident); ok && osHandles[id.Name] {
					report(n.Pos(), id.Name+".Sync(): fsync raw *os.File handles through fs.File.Sync or fs.SyncDir")
				}
			}
		}
		return true
	})
	return out
}

// isOSCall reports whether expr is a call of the form os.X(...).
func isOSCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "os"
}

// allowedLines collects the lines carrying an `//fscheck:allow` escape
// hatch comment.
func allowedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//fscheck:allow") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// min returns the smaller of a and b.
func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

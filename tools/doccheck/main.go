// Command doccheck is the godoc-coverage gate wired into `make check`:
// it parses the given packages and fails when an exported identifier —
// type, function, method, constant, variable, or struct field — has no
// doc comment. Exported surface without documentation does not build.
//
// Usage:
//
//	go run ./tools/doccheck ./internal/delivery ./internal/stream
//
// Each argument is a directory containing one package; _test.go files
// are ignored. Grouped const/var declarations are satisfied by a doc
// comment on the group. Exit status 1 lists every undocumented
// identifier as file:line.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir>...")
		os.Exit(2)
	}
	var bad []string
	for _, dir := range os.Args[1:] {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		bad = append(bad, missing...)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers without doc comments:\n", len(bad))
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns its undocumented
// exported identifiers as "file:line: name" strings.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && !exportedRecv(d) && d.Doc == nil {
						report(d.Pos(), kindOf(d), d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// exportedRecv reports whether a method hangs off an unexported
// receiver type — its whole surface is package-private, so godoc never
// shows it and no comment is demanded.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.Ident:
			return !x.IsExported()
		default:
			return false
		}
	}
}

// kindOf labels a FuncDecl for the report.
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

// checkGenDecl walks one const/var/type declaration. A doc comment on
// the grouped declaration covers every spec inside it; otherwise each
// exported spec needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			if s.Name.IsExported() {
				if st, ok := s.Type.(*ast.StructType); ok {
					checkFields(s.Name.Name, st, report)
				}
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), declKind(d.Tok), name.Name)
				}
			}
		}
	}
}

// declKind labels a const/var token for the report.
func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// checkFields demands a comment on every exported field of an exported
// struct — the wire-visible and API-visible surface. Line comments
// (`Field T // meaning`) count.
func checkFields(typeName string, st *ast.StructType, report func(token.Pos, string, string)) {
	for _, f := range st.Fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				report(name.Pos(), "field", typeName+"."+name.Name)
			}
		}
	}
}

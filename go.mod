module github.com/mcc-cmi/cmi

go 1.23

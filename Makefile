# CMI — build, test and experiment targets.

GO ?= go

.PHONY: all check build vet test race bench bench-smoke crash cover docs examples experiments clean

all: build vet test race docs bench-smoke crash

# The one gate to run before pushing: static checks plus the race-enabled
# test suite and the docs-consistency guard.
check: vet race docs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Compile-and-run smoke over the perf surfaces: a tiny cmibench
# awareness run (BENCH_*.json untouched) plus the delivery fan-out
# benchmarks at one iteration each.
bench-smoke:
	$(GO) run ./cmd/cmibench -exp awareness -smoke
	$(GO) test -run '^$$' -bench 'BenchmarkDeliveryFanout' -benchtime=1x .

# Crash-injection harness: SIGKILL a randomized enactment workload at
# arbitrary journal positions, recover, and check the invariants
# (short randomized budget; raise CMI_CRASH_ROUNDS for a longer soak).
crash:
	CMI_CRASH_ROUNDS=$${CMI_CRASH_ROUNDS:-5} $(GO) test -count=1 -run '^TestCrashRecovery$$' -v ./internal/system/

cover:
	$(GO) test -cover ./...

# Docs-consistency guard: every registered cmi_* metric must be
# documented in docs/OPERATIONS.md.
docs:
	$(GO) test -run TestMetricsDocumented .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/epidemic
	$(GO) run ./examples/taskforce
	$(GO) run ./examples/federation
	$(GO) run ./examples/darpa
	$(GO) run ./examples/enterprise

# Regenerate every figure and reported number (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/cmibench -exp all

clean:
	$(GO) clean ./...

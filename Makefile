# CMI — build, test and experiment targets.

GO ?= go

.PHONY: all check build vet test race bench bench-smoke bench-gate crash chaos-e2e chaos-disk fscheck cover docs examples experiments clean

all: build vet test race docs fscheck bench-smoke bench-gate crash chaos-e2e chaos-disk

# The one gate to run before pushing: static checks plus the race-enabled
# test suite, the docs-consistency guard and the storage-seam gate. The
# wire package — the binary framing under every durable journal — is
# vetted and raced explicitly so a narrowed ./... invocation can never
# silently skip it.
check: vet race docs fscheck
	$(GO) vet ./internal/wire/
	$(GO) test -race ./internal/wire/

# Storage-seam gate: the durable-log packages must not open, rename,
# rewrite or fsync files through the os package directly — everything
# goes through internal/fs, so the fault-injecting filesystem sees the
# same code paths production runs. The second invocation is the negative
# self-test: over the known-bad corpus the gate MUST fail, proving it
# still detects the bypasses it exists to catch.
fscheck:
	$(GO) run ./tools/fscheck ./internal/delivery ./internal/enact ./internal/federation ./internal/crisis ./internal/system ./internal/fsck
	@echo "fscheck: negative self-test (gate must flag tools/fscheck/testdata)"
	@if $(GO) run ./tools/fscheck ./tools/fscheck/testdata >/dev/null 2>&1; then \
		echo "fscheck: negative self-test FAILED: known-bad corpus passed"; exit 1; \
	else \
		echo "fscheck: negative self-test ok"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Compile-and-run smoke over the perf surfaces: a tiny cmibench
# awareness run (BENCH_*.json untouched) plus the journal-append
# benchmarks at one iteration each. Every line is its own recipe
# command, so a non-zero cmibench exit fails the target.
bench-smoke:
	$(GO) run ./cmd/cmibench -exp awareness -smoke
	$(GO) run ./cmd/cmibench -exp enact -smoke
	$(GO) test -run '^$$' -bench 'BenchmarkDeliveryFanout' -benchtime=1x -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkWALAppend' -benchtime=1x -benchmem ./internal/enact/
	$(GO) test -run '^$$' -bench 'BenchmarkSpoolPush' -benchtime=1x -benchmem ./internal/federation/

# Perf ratchet: re-measure the tracked points (awareness localJournal
# throughput, enactment recovery time, streaming delivery rate, striped
# enactment throughput and its 4-vs-1 speedup floor) and fail on >15%
# regression against the committed BENCH_*.json trajectory. The second
# invocation is the negative self-test: under a 1.3x handicap the gate
# MUST fail, proving it actually detects regressions of that size.
bench-gate:
	$(GO) run ./cmd/cmibench -exp gate
	@echo "bench-gate: negative self-test (gate must fail under -gate-handicap 1.3)"
	@if $(GO) run ./cmd/cmibench -exp gate -gate-handicap 1.3 >/dev/null 2>&1; then \
		echo "bench-gate: negative self-test FAILED: handicapped gate passed"; exit 1; \
	else \
		echo "bench-gate: negative self-test ok"; \
	fi

# Crash-injection harness: SIGKILL a randomized enactment workload at
# arbitrary journal positions, recover, and check the invariants
# (short randomized budget; raise CMI_CRASH_ROUNDS for a longer soak).
crash:
	CMI_CRASH_ROUNDS=$${CMI_CRASH_ROUNDS:-5} $(GO) test -count=1 -run '^TestCrashRecovery$$' -v ./internal/system/

# Black-box chaos oracle: compile real cmid/cmictl binaries, run the
# checked-in scenario specs (test/e2e/scenarios/*.json) with seeded
# SIGKILL / partition / latency schedules, and verify the global
# invariants after quiesce. Override the schedule with
# CMI_CHAOS_SEED / CMI_CHAOS_ACTIONS to reproduce or extend a run.
chaos-e2e:
	$(GO) test -count=1 -run '^TestChaosScenarios$$' -v -timeout 15m ./test/e2e/

# Disk-fault chaos: the scenarios carrying a diskFaults block run
# against real cmid/cmictl binaries with the seeded fault filesystem
# armed (-fs-faults) and assert the domain either serves correct state
# or fails loudly with a state dir `cmictl fsck` can diagnose and
# repair. CMI_DISK_SWEEP widens every scenario into a multi-seed sweep
# (default 10 seeds per scenario).
chaos-disk:
	CMI_DISK_SWEEP=$${CMI_DISK_SWEEP:-10} $(GO) test -count=1 -run '^TestDiskFaultScenarios$$' -v -timeout 15m ./test/e2e/

cover:
	$(GO) test -cover ./...

# Docs-consistency guards: every registered cmi_* metric must be
# documented in docs/OPERATIONS.md, every federation mux route in
# docs/API.md, and every exported identifier of the delivery,
# federation and stream packages must carry a doc comment.
docs:
	$(GO) test -run 'TestMetricsDocumented|TestAPIDocumented' .
	$(GO) run ./tools/doccheck ./internal/delivery ./internal/federation ./internal/stream

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/epidemic
	$(GO) run ./examples/taskforce
	$(GO) run ./examples/federation
	$(GO) run ./examples/darpa
	$(GO) run ./examples/enterprise

# Regenerate every figure and reported number (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/cmibench -exp all

clean:
	$(GO) clean ./...

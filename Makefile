# CMI — build, test and experiment targets.

GO ?= go

.PHONY: all check build vet test race bench cover examples experiments clean

all: build vet test race

# The one gate to run before pushing: static checks plus the race-enabled
# test suite.
check: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/epidemic
	$(GO) run ./examples/taskforce
	$(GO) run ./examples/federation
	$(GO) run ./examples/darpa
	$(GO) run ./examples/enterprise

# Regenerate every figure and reported number (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/cmibench -exp all

clean:
	$(GO) clean ./...

package cmi_test

import (
	"os"
	"testing"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

// TestShippedCrisisSpec loads specs/crisis.adl — the specification file
// the README tells operators to serve with cmid — and drives its
// Section 5.4 path end to end.
func TestShippedCrisisSpec(t *testing.T) {
	src, err := os.ReadFile("specs/crisis.adl")
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtual()
	sys, err := cmi.New(cmi.Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	spec, err := sys.LoadSpec(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Processes) != 3 {
		t.Fatalf("processes = %d", len(spec.Processes))
	}
	if len(spec.Awareness) != 4 {
		t.Fatalf("awareness schemas = %d", len(spec.Awareness))
	}
	for _, p := range [][2]string{{"leader", "Leader"}, {"epi", "Epi"}} {
		if err := sys.AddHuman(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.AssignRole("CrisisLeader", "leader"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AssignRole("Epidemiologist", "epi"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}

	pi, err := sys.StartProcess("InformationGathering", "leader")
	if err != nil {
		t.Fatal(err)
	}
	co := sys.Coordination()
	run := func(processID, varName, user string) {
		t.Helper()
		for _, ai := range co.ActivitiesOf(processID) {
			if ai.Var == varName && ai.State == cmi.Ready {
				if err := co.Start(ai.ID, user); err != nil {
					t.Fatal(err)
				}
				if err := co.Complete(ai.ID, user); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
		t.Fatalf("no ready %q in %s", varName, processID)
	}
	run(pi.ID(), "ReceiveReports", "leader")
	run(pi.ID(), "AssessSituation", "leader")

	// Start the patient-interview task force and raise a deadline
	// violation inside an information request.
	var tfID string
	for _, ai := range co.ActivitiesOf(pi.ID()) {
		if ai.Var == "PatientInterviews" {
			tfID = ai.ID
		}
	}
	if err := co.Start(tfID, "leader"); err != nil {
		t.Fatal(err)
	}
	t0 := clk.Now()
	if err := sys.SetScopedRole(tfID, "tfc", "TaskForceLeader", "epi"); err != nil {
		t.Fatal(err)
	}
	run(tfID, "Organize", "leader")
	var reqID string
	for _, ai := range co.ActivitiesOf(tfID) {
		if ai.Var == "RequestInfo" {
			reqID = ai.ID
		}
	}
	if err := co.Start(reqID, "leader"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScopedRole(reqID, "irc", "Requestor", "epi"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContextField(reqID, "irc", "RequestDeadline", t0.Add(48*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContextField(tfID, "tfc", "TaskForceDeadline", t0.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	notifs := sys.MustViewer("epi")
	if len(notifs) != 1 || notifs[0].Schema != "DeadlineViolation" {
		t.Fatalf("notifications = %v", notifs)
	}
	// The shipped spec carries a priority.
	if notifs[0].Priority != 5 {
		t.Fatalf("priority = %d", notifs[0].Priority)
	}
}

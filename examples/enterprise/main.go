// Enterprise: the CMM Service Model in a virtual enterprise.
//
// The paper's Service Model "supports reusable process activities and
// related resources, service quality, and service agreements, as needed
// to support collaboration processes in virtual enterprises" (Section 3).
// Here two external laboratories offer a lab-test process as a service
// with different quality declarations; a crisis cell selects by
// requirements, invokes through the broker, and the broker judges the
// resulting agreements against their deadlines from the live event
// stream. An audit recorder journals everything for after-the-fact
// analysis.
//
// Run with: go run ./examples/enterprise
package main

import (
	"fmt"
	"log"
	"path/filepath"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

func labProcess(name string) *cmi.ProcessSchema {
	return &cmi.ProcessSchema{
		Name: name,
		Activities: []cmi.ActivityVariable{
			{Name: "Prepare", Schema: &cmi.BasicActivitySchema{Name: name + "/Prepare"}},
			{Name: "Analyze", Schema: &cmi.BasicActivitySchema{Name: name + "/Analyze"}},
		},
		Dependencies: []cmi.Dependency{
			{Type: cmi.DepSequence, Sources: []string{"Prepare"}, Target: "Analyze"},
		},
	}
}

func main() {
	log.SetFlags(0)
	clk := vclock.NewVirtual()
	sys, err := cmi.New(cmi.Config{Clock: clk})
	must(err)
	defer sys.Close()

	// Journal the enactment stream.
	auditPath := filepath.Join(sys.StateDir(), "audit.jsonl")
	recorder, err := cmi.NewAuditRecorder(auditPath)
	must(err)
	defer recorder.Close()
	sys.Coordination().Observe(recorder)
	sys.Contexts().Observe(recorder)

	// Two providers offer the same kind of service at different quality.
	registry := cmi.NewServiceRegistry()
	broker := cmi.NewServiceBroker(registry)
	sys.Coordination().Observe(broker)

	express := &cmi.Service{
		Name: "ExpressPCR", Provider: "MetroLab",
		Schema:  labProcess("ExpressPCRRun"),
		Quality: cmi.ServiceQuality{MaxDuration: 6 * time.Hour, Cost: 500, Reliability: 0.97},
	}
	budget := &cmi.Service{
		Name: "BatchPCR", Provider: "CountyLab",
		Schema:  labProcess("BatchPCRRun"),
		Quality: cmi.ServiceQuality{MaxDuration: 48 * time.Hour, Cost: 90, Reliability: 0.92},
	}
	for _, svc := range []*cmi.Service{express, budget} {
		must(registry.Register(svc))
		must(sys.RegisterProcess(svc.Schema))
	}
	must(sys.AddHuman("cell", "Crisis Cell"))
	must(sys.Start())

	run := func(processID string) {
		for _, stage := range []string{"Prepare", "Analyze"} {
			var id string
			for _, ai := range sys.Coordination().ActivitiesOf(processID) {
				if ai.Var == stage {
					id = ai.ID
				}
			}
			must(sys.Coordination().Start(id, ""))
			clk.Advance(4 * time.Hour)
			must(sys.Coordination().Complete(id, ""))
		}
	}

	// Urgent need: select by requirements; the express lab wins despite
	// its price.
	ag1, err := broker.InvokeBest(sys, cmi.ServiceRequirements{MaxDuration: 12 * time.Hour}, "cell", clk.Now())
	must(err)
	fmt.Printf("urgent request  -> %s by %s, deadline %s\n", ag1.Service, ag1.Provider,
		ag1.Deadline.Format("Jan 2 15:04"))
	run(ag1.ProcessID) // 8h of work against a 6h promise: violated
	got, _ := broker.Agreement(ag1.ProcessID)
	fmt.Printf("  outcome: %s (work took 8h against the 6h promise)\n", got.Status)

	// Routine need: cheapest wins, and 8h easily meets 48h.
	ag2, err := broker.InvokeBest(sys, cmi.ServiceRequirements{MaxCost: 100}, "cell", clk.Now())
	must(err)
	fmt.Printf("routine request -> %s by %s, deadline %s\n", ag2.Service, ag2.Provider,
		ag2.Deadline.Format("Jan 2 15:04"))
	run(ag2.ProcessID)
	got, _ = broker.Agreement(ag2.ProcessID)
	fmt.Printf("  outcome: %s\n", got.Status)

	// The audit journal answers after-the-fact questions.
	recs, err := cmi.ReadAudit(auditPath, cmi.AuditQuery{ProcessInstance: ag1.ProcessID})
	must(err)
	fmt.Printf("\naudit: %d journaled events for the violated invocation %s\n", len(recs), ag1.ProcessID)
	recorded, failed := recorder.Stats()
	fmt.Printf("audit: %d events recorded in total (%d failures)\n", recorded, failed)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Epidemic: the paper's running example (Section 5.4) end to end.
//
// A health crisis leader creates a task force with a deadline. A task
// force member issues an information request subprocess with its own,
// earlier deadline, becoming the dynamically created, scoped Requestor
// role. When the crisis situation changes and the leader moves the task
// force deadline earlier than the outstanding request's deadline, the
// DeadlineViolation awareness schema — Compare2[InfoRequest, <=](op1,
// op2) delivered to InfoRequestContext.Requestor with the identity
// assignment — notifies exactly the requestor, who can then renegotiate
// or cancel the request.
//
// Run with: go run ./examples/epidemic
package main

import (
	"fmt"
	"log"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

const spec = `
contextschema TaskForceContext {
    role TaskForceMembers
    time TaskForceDeadline
}

contextschema InfoRequestContext {
    role Requestor
    time RequestDeadline
}

process InfoRequest {
    context irc InfoRequestContext
    input context tfc TaskForceContext
    activity Gather role org Epidemiologist
    activity Integrate role org Epidemiologist
    seq Gather -> Integrate
}

process TaskForce {
    context tfc TaskForceContext
    activity Organize role org CrisisLeader
    subprocess RequestInfo InfoRequest optional repeatable bind (tfc = tfc)
    activity Assess role org Epidemiologist
    seq Organize -> RequestInfo
    seq Organize -> Assess
}

# AS_InfoRequest = (Compare2[InfoRequest, <=](op1, op2),
#                   InfoRequestContext.Requestor, Identity)
awareness DeadlineViolation on InfoRequest {
    op1 = context TaskForceContext.TaskForceDeadline
    op2 = context InfoRequestContext.RequestDeadline
    root = compare2 "<=" (op1, op2)
    deliver scoped InfoRequestContext.Requestor
    assign identity
    describe "The task force deadline moved earlier than your information request deadline"
}
`

func main() {
	log.SetFlags(0)
	clk := vclock.NewVirtual()
	sys, err := cmi.New(cmi.Config{Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	sys.MustLoadSpec(spec)
	must(sys.AddHuman("leader", "Health Crisis Leader"))
	must(sys.AddHuman("dr.reed", "Dr Reed (epidemiologist)"))
	must(sys.AddHuman("dr.okoye", "Dr Okoye (epidemiologist)"))
	must(sys.AssignRole("CrisisLeader", "leader"))
	must(sys.AssignRole("Epidemiologist", "dr.reed"))
	must(sys.AssignRole("Epidemiologist", "dr.okoye"))
	must(sys.Start())

	co := sys.Coordination()
	say := func(format string, args ...any) {
		fmt.Printf("[%s] ", clk.Now().Format("Jan 2 15:04"))
		fmt.Printf(format+"\n", args...)
	}

	// The leader creates the task force with a 72h deadline.
	pi, err := sys.StartProcess("TaskForce", "leader")
	must(err)
	t0 := clk.Now()
	must(sys.SetContextField(pi.ID(), "tfc", "TaskForceDeadline", t0.Add(72*time.Hour)))
	must(sys.SetScopedRole(pi.ID(), "tfc", "TaskForceMembers", "dr.reed", "dr.okoye"))
	say("task force %s created, deadline t0+72h, members dr.reed & dr.okoye", pi.ID())

	items := sys.Worklist("leader")
	must(co.Start(items[0].ActivityID, "leader"))
	clk.Advance(2 * time.Hour)
	must(co.Complete(items[0].ActivityID, "leader"))
	say("task force organized")

	// dr.reed issues an information request due in 48h; the scoped
	// Requestor role exists only while the request subprocess lives.
	var reqID string
	for _, ai := range co.ActivitiesOf(pi.ID()) {
		if ai.Var == "RequestInfo" {
			reqID = ai.ID
		}
	}
	must(co.Start(reqID, "leader"))
	must(sys.SetScopedRole(reqID, "irc", "Requestor", "dr.reed"))
	must(sys.SetContextField(reqID, "irc", "RequestDeadline", t0.Add(48*time.Hour)))
	say("information request %s issued by dr.reed, deadline t0+48h", reqID)

	// The external situation worsens: the leader pulls the task force
	// deadline in to 24h — earlier than the request's 48h deadline.
	clk.Advance(6 * time.Hour)
	must(sys.SetContextField(pi.ID(), "tfc", "TaskForceDeadline", t0.Add(24*time.Hour)))
	say("task force deadline MOVED to t0+24h (violates the 48h request deadline)")

	// Exactly the requestor is notified.
	for _, who := range []string{"dr.reed", "dr.okoye", "leader"} {
		viewer := sys.Viewer(who)
		pendings, err := viewer.Pending()
		must(err)
		say("%s: %d pending notification(s)", who, len(pendings))
		for _, n := range pendings {
			say("    -> [%s] %s", n.Schema, n.Description)
			must(viewer.Ack(n.ID))
		}
	}

	// dr.reed reacts: he cancels the information request. The Requestor
	// scoped role disappears with it (Section 5.4).
	must(co.Terminate(reqID, "leader"))
	say("dr.reed cancelled the information request; the Requestor role is gone")

	// Another deadline move now notifies nobody: the scoped role's
	// lifetime bounded the delivery interval.
	clk.Advance(time.Hour)
	must(sys.SetContextField(pi.ID(), "tfc", "TaskForceDeadline", t0.Add(12*time.Hour)))
	pendings, err := sys.Viewer("dr.reed").Pending()
	must(err)
	say("after cancellation: dr.reed has %d pending notification(s)", len(pendings))

	delivered, undeliverable, _ := sys.DeliveryAgent().Stats()
	say("delivery agent: %d delivered, %d undeliverable", delivered, undeliverable)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Darpa: the Section 7 deployment at full scale.
//
// The paper reports that the CMI system was used in a DARPA-funded
// intelligence-gathering demonstration: nine collaboration processes with
// more than fifty CMM activities (translating into a few hundred WfMS
// activities), eight awareness specifications, and thirty basic activity
// scripts for creating and managing context resources. This example
// regenerates that deployment, installs it into one system, runs all
// thirty scripts, and exercises one of the nine processes end to end.
//
// Run with: go run ./examples/darpa
package main

import (
	"fmt"
	"log"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/crisis"
)

func main() {
	log.SetFlags(0)

	dep, err := crisis.NewDeployment()
	must(err)
	inv, err := dep.Inventory()
	must(err)

	fmt.Println("deployment inventory (paper Section 7 vs this build):")
	fmt.Printf("  collaboration processes:   9 (paper)  %d (here)\n", inv.Processes)
	fmt.Printf("  CMM activities:          >50 (paper)  %d (here)\n", inv.CMMActivities)
	fmt.Printf("  WfMS activities:  a few hundred       %d (here, %.1fx expansion)\n",
		inv.WfMSActivities, inv.Expansion)
	fmt.Printf("  awareness specifications:  8 (paper)  %d (here)\n", inv.AwarenessSpecs)
	fmt.Printf("  basic activity scripts:   30 (paper)  %d (here)\n", inv.Scripts)

	sys, err := cmi.New(cmi.Config{})
	must(err)
	defer sys.Close()
	must(dep.Install(sys))
	staff, err := crisis.SeedStaff(sys, 6)
	must(err)
	must(sys.Start())

	fmt.Printf("\nrunning the %d context-management scripts... ", len(dep.Scripts))
	must(dep.RunScripts(sys))
	fmt.Println("done")

	// Exercise the IntelFusion process and its ThreatEscalated awareness
	// schema (a scoped-role delivery).
	pi, err := sys.StartProcess("IntelFusion", staff.Leader)
	must(err)
	must(sys.SetScopedRole(pi.ID(), "status", "Owner", staff.Epidemiologists[0]))

	co := sys.Coordination()
	stages := []string{"CollectReports", "VetSources", "CorrelateSignals", "AssessThreat", "DisseminateAssessment", "ArchiveIntel"}
	for i, stage := range stages {
		user := staff.Epidemiologists[0]
		if i == 0 || i == len(stages)-1 {
			user = staff.Leader
		}
		var id string
		for _, ai := range co.ActivitiesOf(pi.ID()) {
			if ai.Var == stage {
				id = ai.ID
			}
		}
		must(co.Start(id, user))
		if stage == "AssessThreat" {
			// The assessment escalates: the ThreatEscalated awareness
			// schema routes this to the scoped Owner role.
			must(sys.SetContextField(pi.ID(), "status", "Escalated", true))
		}
		must(co.Complete(id, user))
	}
	st, _ := co.ProcessState(pi.ID())
	fmt.Printf("IntelFusion instance %s: %s\n", pi.ID(), st)

	notifs := sys.MustViewer(staff.Epidemiologists[0])
	fmt.Printf("%s (scoped Owner) received %d notification(s):\n", staff.Epidemiologists[0], len(notifs))
	for _, n := range notifs {
		fmt.Printf("  [%s] %s\n", n.Schema, n.Description)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

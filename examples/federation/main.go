// Federation: the client-server architecture of Figure 5 over HTTP.
//
// One process plays all parts: it serves the CMI Enactment System on a
// loopback port, then drives it exactly as the CMI clients would — a
// designer client uploads the ADL specification, staffs the directory and
// starts the system; participant clients work their worklists; the
// awareness information viewer polls for notifications.
//
// Run with: go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	cmi "github.com/mcc-cmi/cmi"
)

const spec = `
contextschema HandoverContext {
    role OnCall
}

process Handover {
    context hc HandoverContext
    activity Prepare role org Operator
    activity Brief role org Operator
    seq Prepare -> Brief
}

awareness HandoverReady on Handover {
    root = activity Brief to (Completed)
    deliver scoped HandoverContext.OnCall
    describe "The shift handover briefing is complete"
}
`

func main() {
	log.SetFlags(0)

	// --- server side ---------------------------------------------------
	sys, err := cmi.New(cmi.Config{})
	must(err)
	defer sys.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	srv := &http.Server{Handler: cmi.NewFederationServer(sys).Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("enactment system serving on", base)

	// --- designer client -----------------------------------------------
	designer := cmi.NewDesignerClient(base, nil)
	resp, err := designer.LoadSpec(spec)
	must(err)
	fmt.Printf("designer uploaded spec: processes=%v awareness=%v\n", resp.Processes, resp.Awareness)
	must(designer.AddParticipant("kim", "Kim", "human"))
	must(designer.AddParticipant("lee", "Lee", "human"))
	must(designer.AssignRole("Operator", "kim"))
	must(designer.AssignRole("Operator", "lee"))
	must(designer.StartSystem())

	// --- participant clients --------------------------------------------
	kim := cmi.NewParticipantClient(base, "kim", nil)
	lee := cmi.NewParticipantClient(base, "lee", nil)

	piID, err := kim.StartProcess("Handover")
	must(err)
	// lee will take the next shift: the scoped OnCall role.
	must(kim.SetContextField(piID, "hc", "OnCall", cmi.RoleValue{"lee"}))

	wl, err := kim.Worklist()
	must(err)
	fmt.Printf("kim's worklist: %d item(s), first: %s\n", len(wl), wl[0].Var)
	must(kim.Start(wl[0].ActivityID))
	must(kim.Complete(wl[0].ActivityID))

	wl, err = kim.Worklist()
	must(err)
	must(kim.Start(wl[0].ActivityID))
	must(kim.Complete(wl[0].ActivityID))

	// lee's awareness viewer polls the queue over HTTP.
	deadline := time.Now().Add(3 * time.Second)
	for {
		notifs, err := lee.Notifications()
		must(err)
		if len(notifs) > 0 {
			fmt.Printf("lee received: [%s] %s\n", notifs[0].Schema, notifs[0].Description)
			must(lee.Ack(notifs[0].ID))
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("no notification arrived")
		}
		time.Sleep(10 * time.Millisecond)
	}

	rows, err := lee.Monitor(piID)
	must(err)
	fmt.Printf("monitor rows: %d; process listing:\n", len(rows))
	procs, err := lee.Processes()
	must(err)
	for _, p := range procs {
		fmt.Printf("  %-6s %-10s %s\n", p.ID, p.Schema, p.State)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Quickstart: the smallest complete CMI program.
//
// It declares one process and one awareness schema in ADL, runs the
// process, and shows the customized awareness notification arriving in
// the right participant's viewer — and nobody else's.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cmi "github.com/mcc-cmi/cmi"
)

const spec = `
# A review process: an author drafts a document, reviewers review it.
contextschema ReviewContext {
    role Author
    int Revision
}

process Review {
    context rc ReviewContext
    activity Draft role org Writer
    activity Review role org Reviewer
    seq Draft -> Review
}

# Tell the author when the reviewers finish — and only the author.
awareness ReviewDone on Review {
    root = activity Review to (Completed)
    deliver scoped ReviewContext.Author
    describe "Your document has been reviewed"
}
`

func main() {
	log.SetFlags(0)

	sys, err := cmi.New(cmi.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Build time: load the specification and staff the directory.
	sys.MustLoadSpec(spec)
	for _, p := range [][2]string{{"ann", "Ann"}, {"bob", "Bob"}, {"cat", "Cat"}} {
		if err := sys.AddHuman(p[0], p[1]); err != nil {
			log.Fatal(err)
		}
	}
	must(sys.AssignRole("Writer", "ann"))
	must(sys.AssignRole("Reviewer", "bob"))
	must(sys.AssignRole("Reviewer", "cat"))
	must(sys.Start())

	// Run time: ann starts a review and plays the scoped Author role.
	pi, err := sys.StartProcess("Review", "ann")
	if err != nil {
		log.Fatal(err)
	}
	must(sys.SetScopedRole(pi.ID(), "rc", "Author", "ann"))

	// ann drafts: her worklist shows the ready activity.
	items := sys.Worklist("ann")
	fmt.Printf("ann's worklist: %d item(s), first: %s\n", len(items), items[0].Var)
	must(sys.Coordination().Start(items[0].ActivityID, "ann"))
	must(sys.Coordination().Complete(items[0].ActivityID, "ann"))

	// bob reviews.
	items = sys.Worklist("bob")
	must(sys.Coordination().Start(items[0].ActivityID, "bob"))
	must(sys.Coordination().Complete(items[0].ActivityID, "bob"))

	// Let the awareness engine drain, then read the viewers.
	sys.Drain()
	for _, who := range []string{"ann", "bob", "cat"} {
		notifs := sys.MustViewer(who)
		fmt.Printf("%s received %d notification(s)\n", who, len(notifs))
		for _, n := range notifs {
			fmt.Printf("  [%s] %s\n", n.Schema, n.Description)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Taskforce: dynamic task forces, scoped roles and process monitoring.
//
// This example builds its CMM schemas programmatically (no ADL) to show
// the model API: a crisis process that dynamically spawns task-force
// subprocesses (Figure 1), scoped roles created while the process runs
// (the task-force leader exists only inside its task force), worklists,
// the monitor view, and a Translate-based awareness schema that tells the
// crisis leader whenever any task force reports findings.
//
// Run with: go run ./examples/taskforce
package main

import (
	"fmt"
	"log"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

func buildModel() (*cmi.ProcessSchema, error) {
	tfCtx := &cmi.ResourceSchema{
		Name: "ForceContext",
		Kind: cmi.ContextResource,
		Fields: []cmi.FieldDef{
			{Name: "ForceLeader", Type: cmi.FieldRole},
			{Name: "ForceMembers", Type: cmi.FieldRole},
			{Name: "Focus", Type: cmi.FieldString},
		},
	}
	force := &cmi.ProcessSchema{
		Name: "Force",
		ResourceVars: []cmi.ResourceVariable{
			{Name: "fc", Usage: cmi.UsageLocal, Schema: tfCtx},
		},
		Activities: []cmi.ActivityVariable{
			{Name: "Investigate", Schema: &cmi.BasicActivitySchema{
				Name: "Investigate", PerformerRole: cmi.ScopedRole("ForceContext", "ForceMembers"),
			}, Repeatable: true},
			{Name: "Report", Schema: &cmi.BasicActivitySchema{
				// Only the force's own (scoped) leader may report.
				Name: "Report", PerformerRole: cmi.ScopedRole("ForceContext", "ForceLeader"),
			}},
		},
		Dependencies: []cmi.Dependency{
			{Type: cmi.DepSequence, Sources: []string{"Investigate"}, Target: "Report"},
		},
	}
	crisis := &cmi.ProcessSchema{
		Name: "Crisis",
		Activities: []cmi.ActivityVariable{
			{Name: "Assess", Schema: &cmi.BasicActivitySchema{
				Name: "Assess", PerformerRole: cmi.OrgRole("Leader"),
			}},
			{Name: "Forces", Schema: force, Repeatable: true},
			{Name: "Conclude", Schema: &cmi.BasicActivitySchema{
				Name: "Conclude", PerformerRole: cmi.OrgRole("Leader"),
			}},
		},
		Dependencies: []cmi.Dependency{
			{Type: cmi.DepSequence, Sources: []string{"Assess"}, Target: "Forces"},
			{Type: cmi.DepSequence, Sources: []string{"Forces"}, Target: "Conclude"},
		},
	}
	return crisis, crisis.Validate()
}

func main() {
	log.SetFlags(0)
	clk := vclock.NewVirtual()
	sys, err := cmi.New(cmi.Config{Clock: clk})
	must(err)
	defer sys.Close()

	crisis, err := buildModel()
	must(err)
	must(sys.RegisterProcess(crisis))

	// Awareness: notify the crisis leader whenever a force reports,
	// translated from the Force scope into the Crisis scope.
	must(sys.DefineAwareness(&cmi.AwarenessSchema{
		Name:    "ForceReported",
		Process: crisis,
		Description: &cmi.TranslateNode{
			Av:    "Forces",
			Input: &cmi.ActivitySource{Av: "Report", New: []cmi.State{cmi.Completed}},
		},
		DeliveryRole: cmi.OrgRole("Leader"),
		Text:         "A task force has reported its findings",
	}))

	must(sys.AddHuman("chief", "The Chief"))
	must(sys.AssignRole("Leader", "chief"))
	people := []string{"ana", "ben", "cho", "dee"}
	for _, p := range people {
		must(sys.AddHuman(p, p))
	}
	must(sys.Start())

	co := sys.Coordination()
	pi, err := sys.StartProcess("Crisis", "chief")
	must(err)

	// chief assesses the situation.
	wl := sys.Worklist("chief")
	must(co.Start(wl[0].ActivityID, "chief"))
	clk.Advance(time.Hour)
	must(co.Complete(wl[0].ActivityID, "chief"))

	// Two task forces form dynamically with different staff; the same
	// person can be a plain member in one force and the leader of
	// another — scoped roles are per context.
	spawnForce := func(focus, leader string, members ...string) string {
		var forceAct string
		for _, ai := range co.ActivitiesOf(pi.ID()) {
			if ai.Var == "Forces" && ai.State == cmi.Ready {
				forceAct = ai.ID
			}
		}
		if forceAct == "" {
			info, err := co.Instantiate(pi.ID(), "Forces", "chief")
			must(err)
			forceAct = info.ID
		}
		must(co.Start(forceAct, "chief"))
		must(sys.SetContextField(forceAct, "fc", "Focus", focus))
		must(sys.SetScopedRole(forceAct, "fc", "ForceLeader", leader))
		must(sys.SetScopedRole(forceAct, "fc", "ForceMembers", append(members, leader)...))
		fmt.Printf("force %s (%s): leader=%s members=%v\n", forceAct, focus, leader, members)
		return forceAct
	}
	f1 := spawnForce("hospitals", "ana", "ben")
	f2 := spawnForce("vectors", "ben", "cho", "dee")

	// Scoped worklists: ben sees Investigate in both forces (member of
	// f1, leader+member of f2); dee only in f2.
	fmt.Printf("ben's worklist: %d item(s); dee's worklist: %d item(s)\n",
		len(sys.Worklist("ben")), len(sys.Worklist("dee")))

	runForce := func(forceID, member, leader string) {
		var inv string
		for _, ai := range co.ActivitiesOf(forceID) {
			if ai.Var == "Investigate" {
				inv = ai.ID
			}
		}
		must(co.Start(inv, member))
		clk.Advance(3 * time.Hour)
		must(co.Complete(inv, member))
		var rep string
		for _, ai := range co.ActivitiesOf(forceID) {
			if ai.Var == "Report" {
				rep = ai.ID
			}
		}
		// Only the scoped leader may report: a member is rejected.
		if err := co.Start(rep, member); err == nil {
			log.Fatal("member was allowed to report!")
		} else {
			fmt.Printf("  (%s may not report: scoped role enforced)\n", member)
		}
		must(co.Start(rep, leader))
		clk.Advance(time.Hour)
		must(co.Complete(rep, leader))
	}
	runForce(f1, "ben", "ana")
	runForce(f2, "dee", "ben")

	// The monitor view (the "manager" tool) shows the whole tree.
	fmt.Println("\nmonitor view of the crisis process:")
	for _, row := range co.Monitor(pi.ID()) {
		fmt.Printf("  %-6s %-8s %-14s %-12s %s\n",
			row.ProcessID, row.ActivityID, row.Var, row.State, row.Assignee)
	}

	// Conclude; the process completes.
	wl = sys.Worklist("chief")
	must(co.Start(wl[0].ActivityID, "chief"))
	must(co.Complete(wl[0].ActivityID, "chief"))
	st, _ := co.ProcessState(pi.ID())
	fmt.Printf("\ncrisis process state: %s\n", st)

	// The chief was told each time a force reported.
	notifs := sys.MustViewer("chief")
	fmt.Printf("chief received %d notification(s):\n", len(notifs))
	for _, n := range notifs {
		fmt.Printf("  [%s] %s (crisis instance %v)\n", n.Schema, n.Description, n.Params["processInstanceId"])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

package cmi_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandLineTools builds cmid and cmictl and drives a full designer
// and participant session over the real binaries: spec upload, staffing,
// system start, process work and awareness viewing — the Figure 5
// deployment as a user would run it.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := t.TempDir()
	for _, tool := range []string{"cmid", "cmictl"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	// Pick a free port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	server := "http://" + addr

	specPath := filepath.Join(t.TempDir(), "review.adl")
	spec := `
contextschema ReviewContext {
    role Author
}
process Review {
    context rc ReviewContext
    activity Draft role org Writer
    activity Check role org Writer
    seq Draft -> Check
}
awareness ReviewDone on Review {
    root = activity Check to (Completed)
    deliver scoped ReviewContext.Author
    describe "reviewed"
}
`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	daemon := exec.Command(filepath.Join(bin, "cmid"),
		"-addr", addr, "-state", t.TempDir(), "-spec", specPath)
	daemon.Env = os.Environ()
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	ctl := func(as string, args ...string) (string, error) {
		full := append([]string{"-server", server, "-as", as}, args...)
		cmd := exec.Command(filepath.Join(bin, "cmictl"), full...)
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	// Wait for the daemon to accept connections.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := ctl("ann", "schemas"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cmid did not come up")
		}
		time.Sleep(50 * time.Millisecond)
	}

	mustCtl := func(as string, args ...string) string {
		t.Helper()
		out, err := ctl(as, args...)
		if err != nil {
			t.Fatalf("cmictl %v: %v\n%s", args, err, out)
		}
		return out
	}

	// Designer session.
	mustCtl("ann", "participant", "ann", "Ann", "human")
	mustCtl("ann", "role", "Writer", "ann")
	mustCtl("ann", "start-system")
	if out, err := ctl("ann", "spec", specPath); err == nil {
		t.Fatalf("spec accepted after start:\n%s", out)
	}

	// Participant session.
	piID := strings.TrimSpace(mustCtl("ann", "start", "Review"))
	if piID == "" {
		t.Fatal("no process id")
	}
	mustCtl("ann", "ctx", "set", piID, "rc", "Author", "role", "ann")
	// Read the scoped role back while the process (and so the context)
	// is still live — it retires with the process.
	ctxOut := mustCtl("ann", "ctx", "get", piID, "rc", "Author")
	if !strings.Contains(ctxOut, "ann") {
		t.Fatalf("ctx get:\n%s", ctxOut)
	}
	for i := 0; i < 2; i++ {
		wl := mustCtl("ann", "worklist")
		fields := strings.Fields(wl)
		if len(fields) == 0 {
			t.Fatalf("empty worklist at step %d", i)
		}
		actID := fields[0]
		mustCtl("ann", "activity", "start", actID)
		mustCtl("ann", "activity", "complete", actID)
	}
	procs := mustCtl("ann", "processes")
	if !strings.Contains(procs, "Completed") {
		t.Fatalf("process listing:\n%s", procs)
	}
	notifs := mustCtl("ann", "notifications")
	if !strings.Contains(notifs, "ReviewDone") {
		t.Fatalf("notifications:\n%s", notifs)
	}
	id := strings.Fields(notifs)[0]
	mustCtl("ann", "ack", id)
	if after := mustCtl("ann", "notifications"); strings.Contains(after, "ReviewDone") {
		t.Fatalf("ack had no effect:\n%s", after)
	}
	monitor := mustCtl("ann", "monitor", piID)
	if !strings.Contains(monitor, "Draft") || !strings.Contains(monitor, "Check") {
		t.Fatalf("monitor:\n%s", monitor)
	}
	// The context retired with the completed process: reads now fail.
	if out, err := ctl("ann", "ctx", "get", piID, "rc", "Author"); err == nil {
		t.Fatalf("retired context still readable:\n%s", out)
	}

	// Error surfaces as a non-zero exit.
	if out, err := ctl("ann", "start", "Nope"); err == nil {
		t.Fatalf("unknown schema started:\n%s", out)
	}
	_ = fmt.Sprintf // keep fmt imported if assertions change
}

package cmi

import (
	"github.com/mcc-cmi/cmi/internal/audit"
	"github.com/mcc-cmi/cmi/internal/service"
)

// The CMM Service Model (SM, Figure 2) and the audit/monitoring log,
// re-exported.

type (
	// Service is a reusable process activity offered by a provider with
	// declared quality (paper Section 3's Service Model).
	Service = service.Service
	// ServiceQuality declares a service's advertised quality.
	ServiceQuality = service.Quality
	// ServiceRequirements constrain service selection.
	ServiceRequirements = service.Requirements
	// ServiceRegistry holds the services of the virtual enterprise.
	ServiceRegistry = service.Registry
	// ServiceBroker forms agreements and judges them against deadlines.
	ServiceBroker = service.Broker
	// Agreement binds a consumer to one service invocation.
	Agreement = service.Agreement

	// AuditRecorder journals the primitive event stream durably.
	AuditRecorder = audit.Recorder
	// AuditRecord is one journaled event.
	AuditRecord = audit.Record
	// AuditQuery filters journal records.
	AuditQuery = audit.Query
)

// Agreement statuses.
const (
	AgreementActive    = service.AgreementActive
	AgreementFulfilled = service.AgreementFulfilled
	AgreementViolated  = service.AgreementViolated
)

// NewServiceRegistry returns an empty service registry.
func NewServiceRegistry() *ServiceRegistry { return service.NewRegistry() }

// NewServiceBroker returns a broker over the registry. Register it as an
// observer of the system's coordination engine so it can judge
// agreements: sys.Coordination().Observe(broker).
func NewServiceBroker(r *ServiceRegistry) *ServiceBroker { return service.NewBroker(r) }

// NewAuditRecorder opens an event journal at path. Register it with
// sys.Coordination().Observe and sys.Contexts().Observe.
func NewAuditRecorder(path string) (*AuditRecorder, error) { return audit.NewRecorder(path) }

// ReadAudit scans an event journal with the query.
func ReadAudit(path string, q AuditQuery) ([]AuditRecord, error) { return audit.Read(path, q) }

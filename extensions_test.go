// Tests for the awareness-provisioning extensions the paper leaves open:
// external event sources (Section 5.1.1), presence-based role assignment
// (Section 5.3), and notification priority, aggregation and follow-on
// actions (Section 6.5).
package cmi_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/event"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

// newsRig builds a task-force system with a news-service external source:
// the paper's Section 5.1.1 example — "an external event source may be
// from a news service that has found an article for which a task force
// has registered an interest ... An event from the news service would
// contain a query id that can be related back to the process instance
// through an application-specific event operator."
func newsRig(t *testing.T) (*cmi.System, *sync.Map, string) {
	t.Helper()
	sys, err := cmi.New(cmi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })

	tfCtx := &cmi.ResourceSchema{
		Name: "WatchContext",
		Kind: cmi.ContextResource,
		Fields: []cmi.FieldDef{
			{Name: "Watchers", Type: cmi.FieldRole},
		},
	}
	proc := &cmi.ProcessSchema{
		Name: "Watch",
		ResourceVars: []cmi.ResourceVariable{
			{Name: "wc", Usage: cmi.UsageLocal, Schema: tfCtx},
		},
		Activities: []cmi.ActivityVariable{
			{Name: "RegisterQuery", Schema: &cmi.BasicActivitySchema{Name: "RegisterQuery"}},
		},
	}
	if err := sys.RegisterProcess(proc); err != nil {
		t.Fatal(err)
	}

	// The application registry: query id -> process instance id. An
	// activity script would populate it when registering the query.
	var queries sync.Map
	const newsType = event.Type("app.news")

	err = sys.DefineAwareness(&cmi.AwarenessSchema{
		Name:    "ArticleFound",
		Process: proc,
		Description: &cmi.ExternalSource{
			Name: "news-service",
			Type: newsType,
			Correlate: func(ev cmi.Event) []string {
				qid := ev.String("queryId")
				if inst, ok := queries.Load(qid); ok {
					return []string{inst.(string)}
				}
				return nil
			},
			Info: func(ev cmi.Event) (string, bool) {
				return ev.String("headline"), true
			},
		},
		DeliveryRole: cmi.ScopedRole("WatchContext", "Watchers"),
		Text:         "A news article matching your registered query was found",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHuman("ana", "Ana"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	pi, err := sys.StartProcess("Watch", "ana")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScopedRole(pi.ID(), "wc", "Watchers", "ana"); err != nil {
		t.Fatal(err)
	}
	return sys, &queries, pi.ID()
}

func TestExternalEventSource(t *testing.T) {
	sys, queries, piID := newsRig(t)
	const newsType = event.Type("app.news")

	// No query registered yet: the external event correlates to nothing.
	sys.InjectExternal(sys.NewExternalEvent(newsType, "news-service", event.Params{
		"queryId": "q-1", "headline": "early article",
	}))
	if got := sys.MustViewer("ana"); len(got) != 0 {
		t.Fatalf("uncorrelated external event delivered: %v", got)
	}

	// The activity registers the query for this process instance.
	queries.Store("q-1", piID)
	sys.InjectExternal(sys.NewExternalEvent(newsType, "news-service", event.Params{
		"queryId": "q-1", "headline": "outbreak spreads to neighboring region",
	}))
	got := sys.MustViewer("ana")
	if len(got) != 1 {
		t.Fatalf("notifications = %v", got)
	}
	if got[0].Schema != "ArticleFound" {
		t.Fatalf("schema = %q", got[0].Schema)
	}
	if got[0].Params["info"] != "outbreak spreads to neighboring region" {
		t.Fatalf("headline not digested: %v", got[0].Params)
	}
	// A different query id stays uncorrelated.
	sys.InjectExternal(sys.NewExternalEvent(newsType, "news-service", event.Params{
		"queryId": "q-2", "headline": "unrelated",
	}))
	if got := sys.MustViewer("ana"); len(got) != 1 {
		t.Fatalf("unrelated query delivered: %v", got)
	}
}

func TestExternalSourceValidation(t *testing.T) {
	sys, err := cmi.New(cmi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	proc := &cmi.ProcessSchema{
		Name:       "V",
		Activities: []cmi.ActivityVariable{{Name: "A", Schema: &cmi.BasicActivitySchema{Name: "A"}}},
	}
	if err := sys.RegisterProcess(proc); err != nil {
		t.Fatal(err)
	}
	bad := []*cmi.ExternalSource{
		{Name: "no-type", Correlate: func(cmi.Event) []string { return nil }},
		{Name: "builtin", Type: event.TypeActivity, Correlate: func(cmi.Event) []string { return nil }},
		{Name: "canonical", Type: event.Canonical("V"), Correlate: func(cmi.Event) []string { return nil }},
		{Name: "no-correlate", Type: "app.x"},
	}
	for _, src := range bad {
		s := &cmi.AwarenessSchema{
			Name: "X", Process: proc, Description: src,
			DeliveryRole: cmi.OrgRole("R"),
		}
		sys2, err := cmi.New(cmi.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys2.RegisterProcess(proc); err != nil {
			t.Fatal(err)
		}
		if err := sys2.DefineAwareness(s); err != nil {
			sys2.Close()
			continue // rejected at definition: fine
		}
		if err := sys2.Start(); err == nil {
			t.Errorf("external source %q compiled", src.Name)
		}
		sys2.Close()
	}
}

// prioRig: two awareness schemas with different priorities on one process.
func prioRig(t *testing.T) (*cmi.System, string) {
	t.Helper()
	sys, err := cmi.New(cmi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	sys.MustLoadSpec(`
contextschema PC {
    role Watchers
    int Minor
    int Major
}
process Prio {
    context pc PC
    activity A role org R
}
awareness MinorChange on Prio {
    root = context PC.Minor
    deliver scoped PC.Watchers
    priority 1
    describe "minor"
}
awareness MajorChange on Prio {
    root = context PC.Major
    deliver scoped PC.Watchers
    priority 9
    describe "major"
}
`)
	if err := sys.AddHuman("w", "W"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	pi, err := sys.StartProcess("Prio", "w")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScopedRole(pi.ID(), "pc", "Watchers", "w"); err != nil {
		t.Fatal(err)
	}
	return sys, pi.ID()
}

func TestPriorityOrderingAndDigest(t *testing.T) {
	sys, piID := prioRig(t)
	// Two minor changes arrive before one major change.
	if err := sys.SetContextField(piID, "pc", "Minor", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContextField(piID, "pc", "Minor", 2); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContextField(piID, "pc", "Major", 1); err != nil {
		t.Fatal(err)
	}
	pending := sys.MustViewer("w")
	if len(pending) != 3 {
		t.Fatalf("pending = %v", pending)
	}
	// The high-priority notification sorts first despite arriving last.
	if pending[0].Schema != "MajorChange" || pending[0].Priority != 9 {
		t.Fatalf("first pending = %+v", pending[0])
	}
	if pending[1].Schema != "MinorChange" || pending[2].Schema != "MinorChange" {
		t.Fatalf("tail = %v", pending[1:])
	}
	if pending[1].ID > pending[2].ID {
		t.Fatal("same-priority notifications out of arrival order")
	}
	// The digest aggregates per schema.
	digest, err := sys.Viewer("w").Digest()
	if err != nil {
		t.Fatal(err)
	}
	if len(digest) != 2 {
		t.Fatalf("digest = %v", digest)
	}
	if digest[0].Schema != "MajorChange" || digest[0].Count != 1 {
		t.Fatalf("digest[0] = %+v", digest[0])
	}
	if digest[1].Schema != "MinorChange" || digest[1].Count != 2 {
		t.Fatalf("digest[1] = %+v", digest[1])
	}
	if digest[1].Latest.Description != "minor" {
		t.Fatalf("digest latest = %+v", digest[1].Latest)
	}
}

func TestAssignOnlinePresence(t *testing.T) {
	sys, err := cmi.New(cmi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.MustLoadSpec(`
contextschema OC {
    role Oncall
    int N
}
process P {
    context oc OC
    activity A role org R
}
awareness Ping on P {
    root = context OC.N
    deliver scoped OC.Oncall
    assign online
    describe "ping"
}
`)
	for _, u := range []string{"a", "b", "c"} {
		if err := sys.AddHuman(u, u); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	pi, err := sys.StartProcess("P", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScopedRole(pi.ID(), "oc", "Oncall", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}

	// Nobody signed on: fall back to the whole role (the queue is
	// persistent; the information must not be lost).
	if err := sys.SetContextField(pi.ID(), "oc", "N", 1); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"a", "b", "c"} {
		if got := sys.MustViewer(u); len(got) != 1 {
			t.Fatalf("%s fallback delivery = %v", u, got)
		}
	}

	// Only b signed on: delivery narrows to b.
	if err := sys.SignOn("b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SignOn("ghost"); err == nil {
		t.Fatal("sign-on of unknown participant accepted")
	}
	if err := sys.SetContextField(pi.ID(), "oc", "N", 2); err != nil {
		t.Fatal(err)
	}
	if got := sys.MustViewer("b"); len(got) != 2 {
		t.Fatalf("b = %v", got)
	}
	if got := sys.MustViewer("a"); len(got) != 1 {
		t.Fatalf("a received while offline: %v", got)
	}
	// b signs off; c signs on.
	sys.SignOff("b")
	if err := sys.SignOn("c"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContextField(pi.ID(), "oc", "N", 3); err != nil {
		t.Fatal(err)
	}
	if got := sys.MustViewer("c"); len(got) != 2 {
		t.Fatalf("c = %v", got)
	}
	if got := sys.MustViewer("b"); len(got) != 2 {
		t.Fatalf("b received after sign-off: %v", got)
	}
}

// TestFollowOnAction: a detection hook starts an escalation process — the
// "follow-on actions" of Section 6.5.
func TestFollowOnAction(t *testing.T) {
	clk := vclock.NewVirtual()
	sys, err := cmi.New(cmi.Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.MustLoadSpec(`
contextschema EC {
    role Watchers
    bool Alarm
}
process Main {
    context ec EC
    activity Work role org R
}
process Escalation {
    activity Review role org R
}
awareness AlarmRaised on Main {
    root = context EC.Alarm
    deliver scoped EC.Watchers
    describe "alarm"
}
`)
	if err := sys.AddHuman("w", "W"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AssignRole("R", "w"); err != nil {
		t.Fatal(err)
	}

	started := make(chan string, 1)
	sys.OnDetection(func(schema string, users []string, ev cmi.Event) {
		if schema != "AlarmRaised" {
			return
		}
		// Follow-on: spin up the escalation process. Hooks run on their
		// own goroutine, so calling back into the engine is safe.
		pi, err := sys.StartProcess("Escalation", users[0])
		if err == nil {
			started <- pi.ID()
		}
	})
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	pi, err := sys.StartProcess("Main", "w")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScopedRole(pi.ID(), "ec", "Watchers", "w"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContextField(pi.ID(), "ec", "Alarm", true); err != nil {
		t.Fatal(err)
	}
	select {
	case escID := <-started:
		st, ok := sys.Coordination().ProcessState(escID)
		if !ok || st != cmi.Running {
			t.Fatalf("escalation = %v, %v", st, ok)
		}
		// The escalation's Review activity is on w's worklist.
		found := false
		for _, it := range sys.Worklist("w") {
			if it.ProcessSchema == "Escalation" {
				found = true
			}
		}
		if !found {
			t.Fatal("escalation work not on worklist")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow-on action never ran")
	}
}

// TestConcurrentEnactment drives several processes from concurrent
// goroutines while the awareness engine detects and delivers — the
// external-API concurrency contract, verified under -race.
func TestConcurrentEnactment(t *testing.T) {
	sys, err := cmi.New(cmi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.MustLoadSpec(`
contextschema WC {
    role Watchers
    int N
}
process Conc {
    context wc WC
    activity A role org R
    activity B role org R
    seq A -> B
}
awareness Changed on Conc {
    root = context WC.N
    deliver scoped WC.Watchers
    describe "changed"
}
`)
	const workers = 8
	for i := 0; i < workers; i++ {
		id := workerID(i)
		if err := sys.AddHuman(id, id); err != nil {
			t.Fatal(err)
		}
		if err := sys.AssignRole("R", id); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := workerID(w)
			for round := 0; round < 10; round++ {
				pi, err := sys.StartProcess("Conc", me)
				if err != nil {
					errs <- err
					return
				}
				if err := sys.SetScopedRole(pi.ID(), "wc", "Watchers", me); err != nil {
					errs <- err
					return
				}
				if err := sys.SetContextField(pi.ID(), "wc", "N", round); err != nil {
					errs <- err
					return
				}
				for _, stage := range []string{"A", "B"} {
					var id string
					for _, ai := range sys.Coordination().ActivitiesOf(pi.ID()) {
						if ai.Var == stage {
							id = ai.ID
						}
					}
					if err := sys.Coordination().Start(id, me); err != nil {
						errs <- err
						return
					}
					if err := sys.Coordination().Complete(id, me); err != nil {
						errs <- err
						return
					}
				}
				if st, _ := sys.Coordination().ProcessState(pi.ID()); st != cmi.Completed {
					errs <- fmt.Errorf("process %s ended %s", pi.ID(), st)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	sys.Drain()
	// Every worker saw exactly its own 10 notifications.
	for w := 0; w < workers; w++ {
		if got := sys.MustViewer(workerID(w)); len(got) != 10 {
			t.Fatalf("%s received %d notifications, want 10", workerID(w), len(got))
		}
	}
}

func workerID(i int) string { return fmt.Sprintf("w-%d", i) }

package main

import "testing"

func TestGateThroughputOK(t *testing.T) {
	const committed = 20000.0
	cases := []struct {
		name     string
		measured float64
		handicap float64
		want     bool
	}{
		{"equal", committed, 1, true},
		{"faster", committed * 1.4, 1, true},
		{"near the floor", committed * 0.851, 1, true},
		{"just under the floor", committed * 0.849, 1, false},
		{"collapsed", committed * 0.5, 1, false},
		{"handicap pushes a pass under the floor", committed, 1.3, false},
		{"handicap within tolerance still passes", committed, 1.1, true},
	}
	for _, c := range cases {
		if got := gateThroughputOK(c.measured, committed, c.handicap); got != c.want {
			t.Errorf("%s: gateThroughputOK(%v, %v, %v) = %v, want %v",
				c.name, c.measured, committed, c.handicap, got, c.want)
		}
	}
}

func TestGateLatencyOK(t *testing.T) {
	const committed = 50.0 // ms
	cases := []struct {
		name     string
		measured float64
		handicap float64
		want     bool
	}{
		{"equal", committed, 1, true},
		{"faster", committed * 0.6, 1, true},
		{"near the ceiling", committed * 1.149, 1, true},
		{"just over the ceiling", committed * 1.151, 1, false},
		{"doubled", committed * 2, 1, false},
		{"handicap pushes a pass over the ceiling", committed, 1.3, false},
		{"handicap within tolerance still passes", committed, 1.1, true},
	}
	for _, c := range cases {
		if got := gateLatencyOK(c.measured, committed, c.handicap); got != c.want {
			t.Errorf("%s: gateLatencyOK(%v, %v, %v) = %v, want %v",
				c.name, c.measured, committed, c.handicap, got, c.want)
		}
	}
}

func TestGateCommittedExtraction(t *testing.T) {
	aw := []byte(`{"benchmark":"awareness-sharded-ingest","localJournal":[
		{"shards":1,"eventsPerSec":7000},{"shards":4,"eventsPerSec":21000}]}`)
	got, err := gateAwarenessCommitted(aw, 4)
	if err != nil || got != 21000 {
		t.Fatalf("gateAwarenessCommitted = %v, %v", got, err)
	}
	if _, err := gateAwarenessCommitted(aw, 8); err == nil {
		t.Fatal("missing shard count accepted")
	}
	if _, err := gateAwarenessCommitted([]byte("not json"), 4); err == nil {
		t.Fatal("bad JSON accepted")
	}

	rec := []byte(`{"benchmark":"enactment-recovery","noSnapshot":[
		{"ops":1000,"recoveryMs":3.2},{"ops":16000,"recoveryMs":40.5}]}`)
	ms, err := gateRecoveryCommitted(rec, 16000)
	if err != nil || ms != 40.5 {
		t.Fatalf("gateRecoveryCommitted = %v, %v", ms, err)
	}
	if _, err := gateRecoveryCommitted(rec, 64000); err == nil {
		t.Fatal("missing op count accepted")
	}

	str := []byte(`{"benchmark":"streaming-sessions","inProcess":[
		{"sessions":1000,"deliveriesPerSec":650000},{"sessions":10000,"deliveriesPerSec":720000}]}`)
	ds, err := gateStreamingCommitted(str, 10000)
	if err != nil || ds != 720000 {
		t.Fatalf("gateStreamingCommitted = %v, %v", ds, err)
	}
	if _, err := gateStreamingCommitted(str, 100000); err == nil {
		t.Fatal("missing session count accepted")
	}
	if _, err := gateStreamingCommitted([]byte("not json"), 10000); err == nil {
		t.Fatal("bad JSON accepted")
	}

	en := []byte(`{"benchmark":"enact-striped","remoteNotify":[
		{"stripes":1,"opsPerSec":800},{"stripes":4,"opsPerSec":2900}]}`)
	ops, err := gateEnactCommitted(en, 4)
	if err != nil || ops != 2900 {
		t.Fatalf("gateEnactCommitted = %v, %v", ops, err)
	}
	if _, err := gateEnactCommitted(en, 8); err == nil {
		t.Fatal("missing stripe count accepted")
	}
	if _, err := gateEnactCommitted([]byte("not json"), 4); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

package main

// The streaming-delivery-plane experiment: how many concurrent
// resumable push sessions one node sustains, and the detect-to-
// frame-write latency distribution while it does.
//
// Two arms:
//
//   - In-process sessions (the scaling curve, up to 100k+): each
//     session is a real stream.Session consuming through a real SSE
//     FrameWriter — full encode and frame assembly — writing to
//     io.Discard. This measures the delivery plane itself without
//     paying two sockets per session, which the file-descriptor limit
//     (typically 20k) would cap far below the target.
//   - Real HTTP (the transport validation point): a few thousand
//     genuine SSE connections through the federation server and the
//     reference resuming client, bounded by the fd limit.
//
// Latency is time.Since(n.Time) sampled after the frame write
// returns: enqueue (detection handing the notification to the
// delivery store) to the session's transport write completing.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/mcc-cmi/cmi/internal/delivery"
	"github.com/mcc-cmi/cmi/internal/federation"
	"github.com/mcc-cmi/cmi/internal/obs"
	"github.com/mcc-cmi/cmi/internal/stream"
	"github.com/mcc-cmi/cmi/internal/system"
)

type streamPoint struct {
	Sessions       int     `json:"sessions"`
	Participants   int     `json:"participants"`
	EventsPerPart  int     `json:"eventsPerParticipant"`
	Delivered      int     `json:"delivered"`
	ElapsedMS      float64 `json:"elapsedMs"`
	DeliveriesPerS float64 `json:"deliveriesPerSec"`
	P50Ms          float64 `json:"p50Ms"`
	P99Ms          float64 `json:"p99Ms"`
	MaxMs          float64 `json:"maxMs"`
	BytesPerSess   float64 `json:"bytesPerSession"`
}

type streamHTTPPoint struct {
	Connections    int     `json:"connections"`
	EventsPerPart  int     `json:"eventsPerParticipant"`
	Delivered      int     `json:"delivered"`
	ElapsedMS      float64 `json:"elapsedMs"`
	DeliveriesPerS float64 `json:"deliveriesPerSec"`
	P50Ms          float64 `json:"p50Ms"`
	P99Ms          float64 `json:"p99Ms"`
	MaxMs          float64 `json:"maxMs"`
}

// pctMs picks a percentile (0..1) from a sorted sample of durations,
// in milliseconds.
func pctMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i].Microseconds()) / 1000
}

// streamingSessions runs the experiment and writes BENCH_streaming.json.
func streamingSessions() error {
	header("Streaming delivery plane — concurrent sessions and push latency")
	sessionCounts := []int{1_000, 10_000, 100_000}
	perPart := 100 // sessions per participant
	events := 10   // notifications per participant
	httpConns := 2048
	if benchSmoke {
		sessionCounts = []int{200}
		perPart = 20
		events = 4
		httpConns = 16
	}

	fmt.Println("in-process sessions (full SSE encode, frames to io.Discard):")
	fmt.Printf("  %-10s %-13s %-11s %-12s %-9s %-9s %-9s %s\n",
		"sessions", "participants", "delivered", "del/sec", "p50", "p99", "max", "bytes/sess")
	var points []streamPoint
	for _, n := range sessionCounts {
		p, err := streamInProcPoint(n, perPart, events)
		if err != nil {
			return err
		}
		points = append(points, p)
		fmt.Printf("  %-10d %-13d %-11d %-12.0f %-9s %-9s %-9s %.0f\n",
			p.Sessions, p.Participants, p.Delivered, p.DeliveriesPerS,
			fmt.Sprintf("%.2fms", p.P50Ms), fmt.Sprintf("%.2fms", p.P99Ms),
			fmt.Sprintf("%.1fms", p.MaxMs), p.BytesPerSess)
	}

	fmt.Println("\nreal HTTP SSE connections (federation server + reference client):")
	hp, err := streamHTTPValidation(httpConns, events)
	if err != nil {
		return err
	}
	fmt.Printf("  %-10s %-11s %-12s %-9s %-9s %s\n", "conns", "delivered", "del/sec", "p50", "p99", "max")
	fmt.Printf("  %-10d %-11d %-12.0f %-9s %-9s %s\n",
		hp.Connections, hp.Delivered, hp.DeliveriesPerS,
		fmt.Sprintf("%.2fms", hp.P50Ms), fmt.Sprintf("%.2fms", hp.P99Ms), fmt.Sprintf("%.1fms", hp.MaxMs))

	if benchSmoke {
		fmt.Println("\nsmoke run: BENCH_streaming.json left untouched")
		return nil
	}
	out := struct {
		Benchmark string            `json:"benchmark"`
		Meta      benchMeta         `json:"meta"`
		InProcess []streamPoint     `json:"inProcess"`
		RealHTTP  []streamHTTPPoint `json:"realHTTP"`
	}{
		Benchmark: "streaming-sessions",
		Meta: newBenchMeta(fmt.Sprintf(
			"inProcess: N stream sessions (%d per participant) with full SSE frame encode to io.Discard, "+
				"%d group-commit fanout events per participant, latency = enqueue to frame-write completion; "+
				"realHTTP: %d genuine SSE connections through the federation server and the resuming client "+
				"(in-process curve exists because the fd limit caps real sockets far below the 100k target)",
			perPart, events, httpConns)),
		InProcess: points,
		RealHTTP:  []streamHTTPPoint{hp},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_streaming.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_streaming.json")
	return nil
}

// streamInProcPoint measures one in-process scaling point: sessions/
// perPart participants, each session consuming through an SSE frame
// writer to io.Discard, with every delivered batch checked for
// in-order exactly-once ids.
func streamInProcPoint(sessions, perPart, events int) (streamPoint, error) {
	dir, err := os.MkdirTemp("", "cmi-stream-*")
	if err != nil {
		return streamPoint{}, err
	}
	defer os.RemoveAll(dir)
	store, err := delivery.NewStore(dir)
	if err != nil {
		return streamPoint{}, err
	}
	defer store.Close()
	hub := stream.NewHub(store, stream.Options{})
	hub.Instrument(obs.NewRegistry())
	store.OnCommit(hub.Broadcast)
	defer hub.Close()

	nPart := sessions / perPart
	participants := make([]string, nPart)
	for i := range participants {
		participants[i] = fmt.Sprintf("p%05d", i)
	}

	var memBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&memBefore)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		samples  []time.Duration
		faults   int
		delivers int
	)
	wg.Add(sessions)
	for i := 0; i < sessions; i++ {
		sess, err := hub.Subscribe(participants[i%nPart], 0)
		if err != nil {
			return streamPoint{}, err
		}
		go func(sess *stream.Session) {
			defer wg.Done()
			defer sess.Close()
			fw := hub.NewFrameWriter(io.Discard)
			local := make([]time.Duration, 0, events)
			got, lastID, bad := 0, int64(0), 0
			for got < events {
				batch, err := sess.Next(ctx)
				if err != nil {
					bad++
					break
				}
				if err := fw.WriteEvents(batch); err != nil {
					bad++
					break
				}
				now := time.Now()
				for _, n := range batch {
					if n.ID <= lastID {
						bad++ // duplicate or out of order
					}
					lastID = n.ID
					local = append(local, now.Sub(n.Time))
				}
				got += len(batch)
			}
			if got != events {
				bad++
			}
			mu.Lock()
			samples = append(samples, local...)
			delivers += got
			faults += bad
			mu.Unlock()
		}(sess)
	}

	var memAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&memAfter)
	bytesPerSess := float64(0)
	if memAfter.HeapAlloc > memBefore.HeapAlloc {
		bytesPerSess = float64(memAfter.HeapAlloc-memBefore.HeapAlloc) / float64(sessions)
	}

	start := time.Now()
	for e := 0; e < events; e++ {
		if _, _, err := store.EnqueueFanout(participants, "", delivery.Notification{
			Time: time.Now(), Schema: "Bench", Description: fmt.Sprintf("e%d", e),
		}); err != nil {
			return streamPoint{}, err
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	if faults > 0 {
		return streamPoint{}, fmt.Errorf("streaming: %d sessions violated exactly-once in-order delivery", faults)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return streamPoint{
		Sessions:       sessions,
		Participants:   nPart,
		EventsPerPart:  events,
		Delivered:      delivers,
		ElapsedMS:      float64(elapsed.Microseconds()) / 1000,
		DeliveriesPerS: float64(delivers) / elapsed.Seconds(),
		P50Ms:          pctMs(samples, 0.50),
		P99Ms:          pctMs(samples, 0.99),
		MaxMs:          pctMs(samples, 1),
		BytesPerSess:   bytesPerSess,
	}, nil
}

// streamHTTPValidation opens conns genuine SSE connections against a
// real federation server and drives events events through each.
func streamHTTPValidation(conns, events int) (streamHTTPPoint, error) {
	dir, err := os.MkdirTemp("", "cmi-stream-http-*")
	if err != nil {
		return streamHTTPPoint{}, err
	}
	defer os.RemoveAll(dir)
	sys, err := system.New(system.Config{StateDir: dir})
	if err != nil {
		return streamHTTPPoint{}, err
	}
	defer sys.Close()
	srv := httptest.NewServer(federation.NewServer(sys).Handler())
	defer func() {
		sys.Stream().Close() // end live handlers so srv.Close does not hang
		srv.Close()
	}()

	participants := make([]string, conns)
	for i := range participants {
		participants[i] = fmt.Sprintf("h%05d", i)
	}
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: conns}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []time.Duration
		faults  int
		total   int
	)
	subs := make([]*stream.Subscription, conns)
	for i := range subs {
		subs[i] = stream.Subscribe(ctx, srv.URL, participants[i], stream.ClientOptions{HTTP: hc})
	}
	wg.Add(conns)
	for i := range subs {
		go func(sub *stream.Subscription) {
			defer wg.Done()
			local := make([]time.Duration, 0, events)
			got, lastID, bad := 0, int64(0), 0
			timeout := time.After(120 * time.Second)
			for got < events {
				select {
				case n, ok := <-sub.Events():
					if !ok {
						bad++
						got = events
						break
					}
					if n.ID <= lastID {
						bad++
					}
					lastID = n.ID
					local = append(local, time.Since(n.Time))
					got++
				case <-timeout:
					bad++
					got = events
				}
			}
			mu.Lock()
			samples = append(samples, local...)
			total += len(local)
			faults += bad
			mu.Unlock()
		}(subs[i])
	}

	start := time.Now()
	for e := 0; e < events; e++ {
		if _, _, err := sys.Store().EnqueueFanout(participants, "", delivery.Notification{
			Time: time.Now(), Schema: "Bench", Description: fmt.Sprintf("e%d", e),
		}); err != nil {
			return streamHTTPPoint{}, err
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, sub := range subs {
		sub.Close()
	}
	if faults > 0 {
		return streamHTTPPoint{}, fmt.Errorf("streaming http: %d connections violated delivery expectations", faults)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return streamHTTPPoint{
		Connections:    conns,
		EventsPerPart:  events,
		Delivered:      total,
		ElapsedMS:      float64(elapsed.Microseconds()) / 1000,
		DeliveriesPerS: float64(total) / elapsed.Seconds(),
		P50Ms:          pctMs(samples, 0.50),
		P99Ms:          pctMs(samples, 0.99),
		MaxMs:          pctMs(samples, 1),
	}, nil
}

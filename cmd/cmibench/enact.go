package main

// The parallel-enactment experiment: throughput of the family-striped
// coordination engine under concurrent operations on unrelated process
// families, with the write-ahead log in durable (fsync) mode.
//
// Two arms, per stripe count:
//
//   - remote notify: every event emitted by a committed operation is
//     pushed synchronously to a simulated remote client tool (a fixed
//     1ms service latency, the same model as the awareness benchmark's
//     remote-delivery arm). Event delivery runs under the family's
//     stripe emit lock, so with one stripe every push wait serializes;
//     with N stripes the waits of unrelated families overlap — the
//     pipeline property the striping tentpole builds — and throughput
//     scales with stripe count even on a single core.
//   - journal only: the push removed; operations contend only on the
//     stripe locks and the shared WAL. Group commit already coalesces
//     fsyncs across workers regardless of striping, so this curve is
//     expected to be nearly flat — it isolates what striping does NOT
//     claim to speed up (the durable journal) from what it does (the
//     per-family emit path).
//
// It writes BENCH_enact.json. With -smoke the workload shrinks to a
// compile-and-run check and the JSON is left untouched.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/enact"
	"github.com/mcc-cmi/cmi/internal/event"
	"github.com/mcc-cmi/cmi/internal/obs"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

type enactPoint struct {
	Stripes   int     `json:"stripes"`
	Ops       int     `json:"ops"`
	Events    int     `json:"events"`
	ElapsedMS float64 `json:"elapsedMs"`
	OpsPerSec float64 `json:"opsPerSec"`
	Speedup   float64 `json:"speedupVs1"`
}

// enactBenchSchema is one process family: a repeatable Step the workers
// cycle through Instantiate/Start/Complete, and a Hold activity nobody
// touches so the process never auto-completes. No performer roles, so
// any user may drive it without directory setup.
func enactBenchSchema() *core.ProcessSchema {
	return &core.ProcessSchema{
		Name: "EnactFam",
		Activities: []core.ActivityVariable{
			{Name: "Step", Schema: &core.BasicActivitySchema{Name: "BenchStep"}, Repeatable: true},
			{Name: "Hold", Schema: &core.BasicActivitySchema{Name: "BenchHold"}},
		},
	}
}

// enactRun measures one point: workers goroutines, each cycling its own
// families through Instantiate/Start/Complete, against a stripes-wide
// engine with a durable (fsync) WAL. notify > 0 attaches the simulated
// remote push observer. reg, when non-nil, receives the engine's
// instruments.
func enactRun(stripes, workers, famPerWorker, iters int, notify time.Duration, reg *obs.Registry) (enactPoint, error) {
	dir, err := os.MkdirTemp("", "cmi-enact-*")
	if err != nil {
		return enactPoint{}, err
	}
	defer os.RemoveAll(dir)
	clk := vclock.NewSystem()
	schemas := core.NewSchemaRegistry()
	if err := schemas.Register(enactBenchSchema()); err != nil {
		return enactPoint{}, err
	}
	contexts := core.NewRegistry(clk)
	eng := enact.NewStriped(clk, schemas, core.NewDirectory(), contexts, stripes)
	if reg != nil {
		eng.Instrument(reg)
	}
	wal, err := enact.OpenWAL(filepath.Join(dir, "enact.wal"), enact.WALOptions{Sync: true})
	if err != nil {
		return enactPoint{}, err
	}
	eng.AttachWAL(wal, filepath.Join(dir, "enact.snap"), -1)
	defer eng.CloseWAL()
	var events atomic.Int64
	eng.Observe(event.ConsumerFunc(func(event.Event) {
		events.Add(1)
		if notify > 0 {
			time.Sleep(notify) // simulated synchronous remote push
		}
	}))

	fams := make([]string, workers*famPerWorker)
	for i := range fams {
		pi, err := eng.StartProcess("EnactFam", enact.StartOptions{Initiator: "op"})
		if err != nil {
			return enactPoint{}, err
		}
		fams[i] = pi.ID()
	}
	events.Store(0)

	errCh := make(chan error, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		mine := fams[w*famPerWorker : (w+1)*famPerWorker]
		wg.Add(1)
		go func(mine []string) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				pid := mine[i%len(mine)]
				ai, err := eng.Instantiate(pid, "Step", "op")
				if err != nil {
					errCh <- err
					return
				}
				if err := eng.Start(ai.ID, "op"); err != nil {
					errCh <- err
					return
				}
				if err := eng.Complete(ai.ID, "op"); err != nil {
					errCh <- err
					return
				}
			}
		}(mine)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return enactPoint{}, err
	default:
	}
	ops := workers * iters * 3
	return enactPoint{
		Stripes:   stripes,
		Ops:       ops,
		Events:    int(events.Load()),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		OpsPerSec: float64(ops) / elapsed.Seconds(),
	}, nil
}

// enactParallel runs the experiment and writes BENCH_enact.json.
func enactParallel() error {
	header("Parallel enactment — family-striped engine, durable WAL group commit")
	stripeCounts := []int{1, 2, 4, 8}
	workers, famPerWorker := 16, 4
	notifyIters, journalIters := 24, 400
	reps := 2
	if benchSmoke {
		stripeCounts = []int{1, 4}
		workers, famPerWorker = 4, 2
		notifyIters, journalIters = 4, 8
		reps = 1
	}
	run := func(label string, notify time.Duration, iters int) ([]enactPoint, error) {
		fmt.Printf("%s:\n", label)
		fmt.Printf("  %-8s %-8s %-8s %-12s %-14s %s\n", "stripes", "ops", "events", "elapsed", "ops/sec", "speedup")
		var (
			points []enactPoint
			base   float64
		)
		for _, n := range stripeCounts {
			var best enactPoint
			for rep := 0; rep < reps; rep++ {
				p, err := enactRun(n, workers, famPerWorker, iters, notify, nil)
				if err != nil {
					return nil, err
				}
				if p.OpsPerSec > best.OpsPerSec {
					best = p
				}
			}
			if n == stripeCounts[0] {
				base = best.OpsPerSec
			}
			best.Speedup = best.OpsPerSec / base
			points = append(points, best)
			fmt.Printf("  %-8d %-8d %-8d %-12s %-14.0f %.2fx\n",
				best.Stripes, best.Ops, best.Events,
				fmt.Sprintf("%.0fms", best.ElapsedMS), best.OpsPerSec, best.Speedup)
		}
		fmt.Println()
		return points, nil
	}
	remote, err := run("remote notify (1ms simulated push per event, striped emit + durable WAL)",
		time.Millisecond, notifyIters)
	if err != nil {
		return err
	}
	local, err := run("journal only (stripe locks + shared WAL group commit, fsync on)",
		0, journalIters)
	if err != nil {
		return err
	}

	if benchSmoke {
		fmt.Println("smoke run: BENCH_enact.json left untouched")
	} else {
		out := struct {
			Benchmark    string       `json:"benchmark"`
			Meta         benchMeta    `json:"meta"`
			RemoteNotify []enactPoint `json:"remoteNotify"`
			JournalOnly  []enactPoint `json:"journalOnly"`
		}{
			Benchmark: "enact-striped",
			Meta: newBenchMeta(fmt.Sprintf(
				"%d workers x %d families each, Instantiate/Start/Complete cycles, SyncJournal on; "+
					"remoteNotify: 1ms simulated synchronous remote push per emitted event, delivered under the "+
					"family's stripe emit lock so unrelated families overlap their pushes (the >=2x at 4 stripes "+
					"vs 1 the bench gate enforces); journalOnly: no push — group commit already coalesces fsyncs "+
					"across stripes, so the curve is near-flat by design",
				workers, famPerWorker)),
			RemoteNotify: remote,
			JournalOnly:  local,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_enact.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_enact.json")
	}

	// One instrumented 4-stripe run (2 stripes in smoke): print the
	// cmi_enact_* series the operations endpoint would expose, proving
	// the per-stripe instruments observe the striped pipeline.
	reg := obs.NewRegistry()
	instStripes := 4
	if benchSmoke {
		instStripes = 2
	}
	if _, err := enactRun(instStripes, workers, famPerWorker, journalIters/4+1, 0, reg); err != nil {
		return err
	}
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		return err
	}
	fmt.Printf("\nmetrics snapshot (instrumented %d-stripe run):\n", instStripes)
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "cmi_enact_") {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}

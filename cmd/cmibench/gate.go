package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/crisis"
	"github.com/mcc-cmi/cmi/internal/delivery"
)

// benchMeta makes every BENCH_*.json machine-comparable: the workload
// parameters and the toolchain/host coordinates a later run must match
// (or at least inspect) before reading two files as the same experiment.
type benchMeta struct {
	Workload   string `json:"workload"`
	GoVersion  string `json:"goVersion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

func newBenchMeta(workload string) benchMeta {
	return benchMeta{
		Workload:   workload,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// gateTolerance is how far a re-measured number may regress from the
// committed trajectory before the gate fails: 15%, wide enough for
// machine noise on a journaling workload, narrow enough to catch a real
// regression.
const gateTolerance = 0.15

// gateHandicap scales the measured numbers before comparison (dividing
// throughput, multiplying latency). 1.0 in normal operation; the
// Makefile's negative self-test sets it >1+tolerance to prove the gate
// actually fails on a regression of that size.
var gateHandicap = 1.0

// gateThroughputOK reports whether a measured events/sec figure (scaled
// down by the handicap) holds the committed trajectory within tolerance.
func gateThroughputOK(measured, committed, handicap float64) bool {
	return measured/handicap >= committed*(1-gateTolerance)
}

// gateLatencyOK reports whether a measured duration in ms (scaled up by
// the handicap) holds the committed trajectory within tolerance.
func gateLatencyOK(measuredMS, committedMS, handicap float64) bool {
	return measuredMS*handicap <= committedMS*(1+gateTolerance)
}

// gateAwarenessCommitted extracts the committed localJournal events/sec
// at the given shard count from BENCH_awareness.json bytes.
func gateAwarenessCommitted(data []byte, shards int) (float64, error) {
	var f struct {
		LocalJournal []struct {
			Shards       int     `json:"shards"`
			EventsPerSec float64 `json:"eventsPerSec"`
		} `json:"localJournal"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("gate: BENCH_awareness.json: %w", err)
	}
	for _, p := range f.LocalJournal {
		if p.Shards == shards {
			return p.EventsPerSec, nil
		}
	}
	return 0, fmt.Errorf("gate: BENCH_awareness.json has no localJournal point at %d shards", shards)
}

// gateRecoveryCommitted extracts the committed noSnapshot recovery time
// in ms at the given op count from BENCH_recovery.json bytes.
func gateRecoveryCommitted(data []byte, ops int) (float64, error) {
	var f struct {
		NoSnapshot []struct {
			Ops        int     `json:"ops"`
			RecoveryMS float64 `json:"recoveryMs"`
		} `json:"noSnapshot"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("gate: BENCH_recovery.json: %w", err)
	}
	for _, p := range f.NoSnapshot {
		if p.Ops == ops {
			return p.RecoveryMS, nil
		}
	}
	return 0, fmt.Errorf("gate: BENCH_recovery.json has no noSnapshot point at %d ops", ops)
}

// gateStreamingCommitted extracts the committed inProcess deliveries/sec
// at the given session count from BENCH_streaming.json bytes.
func gateStreamingCommitted(data []byte, sessions int) (float64, error) {
	var f struct {
		InProcess []struct {
			Sessions       int     `json:"sessions"`
			DeliveriesPerS float64 `json:"deliveriesPerSec"`
		} `json:"inProcess"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("gate: BENCH_streaming.json: %w", err)
	}
	for _, p := range f.InProcess {
		if p.Sessions == sessions {
			return p.DeliveriesPerS, nil
		}
	}
	return 0, fmt.Errorf("gate: BENCH_streaming.json has no inProcess point at %d sessions", sessions)
}

// gateEnactCommitted extracts the committed remoteNotify ops/sec at the
// given stripe count from BENCH_enact.json bytes.
func gateEnactCommitted(data []byte, stripes int) (float64, error) {
	var f struct {
		RemoteNotify []struct {
			Stripes   int     `json:"stripes"`
			OpsPerSec float64 `json:"opsPerSec"`
		} `json:"remoteNotify"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("gate: BENCH_enact.json: %w", err)
	}
	for _, p := range f.RemoteNotify {
		if p.Stripes == stripes {
			return p.OpsPerSec, nil
		}
	}
	return 0, fmt.Errorf("gate: BENCH_enact.json has no remoteNotify point at %d stripes", stripes)
}

// gateMeasureAwareness re-measures the localJournal curve's 4-shard
// point with the full benchmark's workload (best of reps, fresh state
// dir per rep).
func gateMeasureAwareness(shards, reps int) (float64, error) {
	var best float64
	for rep := 0; rep < reps; rep++ {
		dir, err := os.MkdirTemp("", "cmi-gate-ingest-*")
		if err != nil {
			return 0, err
		}
		st, err := delivery.NewStoreWith(dir, delivery.StoreOptions{Sync: true})
		if err != nil {
			os.RemoveAll(dir)
			return 0, err
		}
		res, err := crisis.RunIngest(crisis.IngestConfig{
			Shards: shards, Instances: 512, EventsPerInstance: 4, Dir: dir, Store: st,
		})
		st.Close()
		os.RemoveAll(dir)
		if err != nil {
			return 0, err
		}
		if res.EventsPerSec > best {
			best = res.EventsPerSec
		}
	}
	return best, nil
}

// gateMeasureRecovery re-measures the noSnapshot recovery point: seed a
// state dir with ops context writes over a small process pool (the full
// benchmark's workload), then time system.New on it. Best of reps.
func gateMeasureRecovery(ops, reps int) (float64, error) {
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		dir, err := os.MkdirTemp("", "cmi-gate-recovery-*")
		if err != nil {
			return 0, err
		}
		ms, err := func() (float64, error) {
			defer os.RemoveAll(dir)
			s, err := cmi.New(cmi.Config{StateDir: dir, SnapshotEvery: -1})
			if err != nil {
				return 0, err
			}
			const pool = 8
			seed := func() error {
				if _, err := s.LoadSpec(recoverySpec); err != nil {
					return err
				}
				if err := s.AddHuman("op", "Operator"); err != nil {
					return err
				}
				if err := s.AssignRole("Crew", "op"); err != nil {
					return err
				}
				if err := s.Start(); err != nil {
					return err
				}
				var ids []string
				for i := 0; i < pool; i++ {
					pi, err := s.StartProcess("Bench", "op")
					if err != nil {
						return err
					}
					ids = append(ids, pi.ID())
				}
				for i := 0; i < ops; i++ {
					if err := s.SetContextField(ids[i%pool], "bc", "Tally", i); err != nil {
						return err
					}
				}
				return nil
			}
			if err := seed(); err != nil {
				s.Close()
				return 0, err
			}
			if err := s.Close(); err != nil {
				return 0, err
			}
			s2, err := cmi.New(cmi.Config{StateDir: dir, SnapshotEvery: -1})
			if err != nil {
				return 0, err
			}
			rec := s2.Recovery()
			s2.Close()
			return float64(rec.Elapsed.Microseconds()) / 1000, nil
		}()
		if err != nil {
			return 0, err
		}
		if best == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

// gateEnactRatioFloor is the parallel-enactment claim the gate holds the
// repo to: the remote-notify arm at 4 stripes must run at least this
// multiple of the 1-stripe figure, committed AND re-measured. Ratios of
// two measured numbers are handicap-invariant, so the negative self-test
// exercises the throughput checks instead.
const gateEnactRatioFloor = 2.0

// gate is the perf ratchet: re-measure the tracked points — the
// localJournal 4-shard awareness throughput, the 16k-op noSnapshot
// recovery time, the 10k-session streaming delivery rate, and the
// 4-stripe remote-notify enactment throughput (plus its 4-vs-1 parallel
// speedup) — and fail if any regresses more than gateTolerance against
// the committed BENCH_*.json trajectory.
func gate() error {
	header("Performance gate — measured vs committed BENCH_*.json trajectory")
	const (
		gateShards   = 4
		gateOps      = 16000
		gateSessions = 10_000
		gateStripes  = 4
	)
	read := func(name string) ([]byte, error) {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("gate: %w", err)
		}
		return data, nil
	}
	awData, err := read("BENCH_awareness.json")
	if err != nil {
		return err
	}
	recData, err := read("BENCH_recovery.json")
	if err != nil {
		return err
	}
	strData, err := read("BENCH_streaming.json")
	if err != nil {
		return err
	}
	enData, err := read("BENCH_enact.json")
	if err != nil {
		return err
	}
	awCommitted, err := gateAwarenessCommitted(awData, gateShards)
	if err != nil {
		return err
	}
	recCommitted, err := gateRecoveryCommitted(recData, gateOps)
	if err != nil {
		return err
	}
	strCommitted, err := gateStreamingCommitted(strData, gateSessions)
	if err != nil {
		return err
	}
	enCommitted, err := gateEnactCommitted(enData, gateStripes)
	if err != nil {
		return err
	}
	enCommittedBase, err := gateEnactCommitted(enData, 1)
	if err != nil {
		return err
	}
	if gateHandicap != 1.0 {
		fmt.Printf("handicap %.2fx applied to measured numbers (negative self-test)\n", gateHandicap)
	}

	start := time.Now()
	awMeasured, err := gateMeasureAwareness(gateShards, 3)
	if err != nil {
		return err
	}
	recMeasured, err := gateMeasureRecovery(gateOps, 2)
	if err != nil {
		return err
	}
	strMeasured, err := gateMeasureStreaming(gateSessions, 2)
	if err != nil {
		return err
	}
	enMeasured, err := gateMeasureEnact(gateStripes, 2)
	if err != nil {
		return err
	}
	enMeasuredBase, err := gateMeasureEnact(1, 2)
	if err != nil {
		return err
	}

	awOK := gateThroughputOK(awMeasured, awCommitted, gateHandicap)
	recOK := gateLatencyOK(recMeasured, recCommitted, gateHandicap)
	strOK := gateThroughputOK(strMeasured, strCommitted, gateHandicap)
	enOK := gateThroughputOK(enMeasured, enCommitted, gateHandicap)
	committedRatio := enCommitted / enCommittedBase
	measuredRatio := enMeasured / enMeasuredBase
	ratioOK := committedRatio >= gateEnactRatioFloor && measuredRatio >= gateEnactRatioFloor
	verdict := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "REGRESSION"
	}
	fmt.Printf("%-44s %-12s %-12s %-8s %s\n", "tracked point", "committed", "measured", "floor", "verdict")
	fmt.Printf("%-44s %-12.0f %-12.0f %-8.0f %s\n",
		fmt.Sprintf("awareness localJournal ev/s (%d shards)", gateShards),
		awCommitted, awMeasured/gateHandicap, awCommitted*(1-gateTolerance), verdict(awOK))
	fmt.Printf("%-44s %-12.2f %-12.2f %-8.2f %s\n",
		fmt.Sprintf("recovery ms (%d ops, no snapshot)", gateOps),
		recCommitted, recMeasured*gateHandicap, recCommitted*(1+gateTolerance), verdict(recOK))
	fmt.Printf("%-44s %-12.0f %-12.0f %-8.0f %s\n",
		fmt.Sprintf("streaming inProcess del/s (%d sessions)", gateSessions),
		strCommitted, strMeasured/gateHandicap, strCommitted*(1-gateTolerance), verdict(strOK))
	fmt.Printf("%-44s %-12.0f %-12.0f %-8.0f %s\n",
		fmt.Sprintf("enact remoteNotify ops/s (%d stripes)", gateStripes),
		enCommitted, enMeasured/gateHandicap, enCommitted*(1-gateTolerance), verdict(enOK))
	fmt.Printf("%-44s %-12.2f %-12.2f %-8.2f %s\n",
		fmt.Sprintf("enact %d-vs-1-stripe speedup", gateStripes),
		committedRatio, measuredRatio, gateEnactRatioFloor, verdict(ratioOK))
	fmt.Printf("gate measured in %s (tolerance %.0f%%)\n", time.Since(start).Round(time.Millisecond), gateTolerance*100)
	if !awOK || !recOK || !strOK || !enOK || !ratioOK {
		return fmt.Errorf("gate: performance regressed more than %.0f%% against the committed trajectory", gateTolerance*100)
	}
	return nil
}

// gateMeasureStreaming re-measures the inProcess streaming point with
// the full benchmark's per-participant fan-in (100 sessions per
// participant, 10 events). Best of reps.
func gateMeasureStreaming(sessions, reps int) (float64, error) {
	var best float64
	for rep := 0; rep < reps; rep++ {
		p, err := streamInProcPoint(sessions, 100, 10)
		if err != nil {
			return 0, err
		}
		if p.DeliveriesPerS > best {
			best = p.DeliveriesPerS
		}
	}
	return best, nil
}

// gateMeasureEnact re-measures the remote-notify enactment point at the
// given stripe count with the full benchmark's workload. Best of reps.
func gateMeasureEnact(stripes, reps int) (float64, error) {
	var best float64
	for rep := 0; rep < reps; rep++ {
		p, err := enactRun(stripes, 16, 4, 24, time.Millisecond, nil)
		if err != nil {
			return 0, err
		}
		if p.OpsPerSec > best {
			best = p.OpsPerSec
		}
	}
	return best, nil
}

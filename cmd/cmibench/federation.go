package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/crisis"
	"github.com/mcc-cmi/cmi/internal/federation"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

// federationResilience measures the store-and-forward federation edge
// under failure: a local domain runs the Section 5.4 deadline-violation
// scenario and forwards every detected awareness event to a participant
// of a second, remote domain. A fault-injecting transport then drives
// the failure modes of the resilience layer:
//
//	phase 1 (flaky):     a 5xx burst plus dropped responses — retries
//	                     with backoff and idempotency-key dedup carry
//	                     every notification across.
//	phase 2 (blackhole): the remote domain vanishes mid-run; the
//	                     circuit breaker opens, local detection and
//	                     local delivery continue, notifications pile up
//	                     in the durable spool.
//	phase 3 (recovery):  the domain returns; the healthz probe closes
//	                     the breaker and the spool drains. Exactly-once
//	                     delivery is checked against the remote queue.
//
// It writes BENCH_federation.json with time-to-open, recovery time and
// retry-overhead numbers.
func federationResilience() error {
	header("Federation resilience — retry, circuit breaking, store-and-forward")

	const perPhase = 40

	// Remote domain: a second enactment system behind its own
	// federation server. Only its notification store is exercised —
	// forwarded notifications land in the "mirror" participant's
	// durable queue.
	remoteDir, err := os.MkdirTemp("", "cmi-fed-remote-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(remoteDir)
	remoteSys, err := cmi.New(cmi.Config{Clock: vclock.NewSystem(), StateDir: remoteDir})
	if err != nil {
		return err
	}
	defer remoteSys.Close()
	if err := remoteSys.Start(); err != nil { // healthz answers 200 only once started
		return err
	}
	remoteSrv := httptest.NewServer(cmi.NewFederationServer(remoteSys).Handler())
	defer remoteSrv.Close()

	// Local domain: synchronous in-line detection (Shards ≤ 1) so every
	// SetContextField returns with its detection done and the follow-on
	// forwarding hook launched; DeliveryAgent().Wait() then joins the
	// hooks.
	clk := vclock.NewVirtual()
	localSys, err := cmi.New(cmi.Config{Clock: clk})
	if err != nil {
		return err
	}
	defer localSys.Close()
	model, err := crisis.NewModel()
	if err != nil {
		return err
	}
	if err := localSys.RegisterProcess(model.TaskForce); err != nil {
		return err
	}
	if err := localSys.DefineAwareness(model.Awareness[0]); err != nil {
		return err
	}
	staff, err := crisis.SeedStaff(localSys, 2)
	if err != nil {
		return err
	}

	// The forwarder's transport is where faults are injected; the same
	// faulty client serves the resilience layer's healthz probes, so a
	// blackholed domain is blackholed for probes too.
	faultRT := federation.NewFaultRT(nil)
	faultClient := &http.Client{Transport: faultRT}
	policy := federation.Policy{
		MaxAttempts:      3,
		AttemptTimeout:   100 * time.Millisecond,
		BaseBackoff:      10 * time.Millisecond,
		MaxBackoff:       100 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  200 * time.Millisecond,
		ProbeInterval:    50 * time.Millisecond,
	}
	res := federation.NewResilience(remoteSrv.URL, policy, faultClient, nil)
	defer res.Close()
	spoolDir, err := os.MkdirTemp("", "cmi-fed-spool-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(spoolDir)
	fwd, err := federation.NewForwarder(federation.ForwarderConfig{
		Client:    federation.NewRemoteClient(remoteSrv.URL, faultClient).WithResilience(res),
		SpoolPath: filepath.Join(spoolDir, "spool.jsonl"),
		Interval:  25 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer fwd.Close()
	localSys.OnDetection(fwd.Hook("mirror"))

	if err := localSys.Start(); err != nil {
		return err
	}
	pi, err := localSys.StartProcess("TaskForce", staff.Leader)
	if err != nil {
		return err
	}
	co := localSys.Coordination()
	var organize string
	for _, ai := range co.ActivitiesOf(pi.ID()) {
		organize = ai.ID
	}
	if err := co.Start(organize, staff.Leader); err != nil {
		return err
	}
	if err := co.Complete(organize, staff.Leader); err != nil {
		return err
	}
	var reqID string
	for _, ai := range co.ActivitiesOf(pi.ID()) {
		if ai.Var == "RequestInfo" {
			reqID = ai.ID
		}
	}
	if err := co.Start(reqID, staff.Leader); err != nil {
		return err
	}
	requestor := staff.Epidemiologists[0]
	if err := localSys.SetScopedRole(reqID, "irc", "Requestor", requestor); err != nil {
		return err
	}
	t0 := clk.Now()
	if err := localSys.SetContextField(reqID, "irc", "RequestDeadline", t0.Add(1000*time.Hour)); err != nil {
		return err
	}

	// Each move of the task-force deadline below the request deadline
	// refires the Compare2 operator: one detection, one local delivery
	// to the scoped Requestor, one forwarded notification.
	fired := 0
	detect := func(n int) error {
		for i := 0; i < n; i++ {
			fired++
			deadline := t0.Add(time.Duration(fired) * time.Hour)
			if err := localSys.SetContextField(pi.ID(), "tfc", "TaskForceDeadline", deadline); err != nil {
				return err
			}
		}
		localSys.DeliveryAgent().Wait()
		return nil
	}
	waitDrain := func(timeout time.Duration) (time.Duration, error) {
		start := time.Now()
		for fwd.Depth() > 0 {
			if time.Since(start) > timeout {
				return 0, fmt.Errorf("spool did not drain: depth %d", fwd.Depth())
			}
			time.Sleep(2 * time.Millisecond)
		}
		return time.Since(start), nil
	}

	// Phase 1 — flaky remote: a 503 burst and two dropped responses
	// (server executed the push; the client never heard).
	faultRT.FailNext(4)
	faultRT.DropNext(2)
	if err := detect(perPhase); err != nil {
		return err
	}
	if _, err := waitDrain(10 * time.Second); err != nil {
		return err
	}
	retriesFlaky := res.Retries()
	_, dupFlaky, _ := fwd.Stats()
	fmt.Printf("phase 1  flaky remote:     %3d forwarded, %d retries, %d duplicate push(es) deduplicated\n",
		perPhase, retriesFlaky, dupFlaky)

	// Phase 2 — blackhole: requests (and healthz probes) hang until
	// their per-attempt timeout.
	faultRT.SetBlackhole(true)
	holeStart := time.Now()
	if err := detect(perPhase); err != nil {
		return err
	}
	var timeToOpen time.Duration
	for res.Breaker().State() != federation.BreakerOpen {
		if time.Since(holeStart) > 10*time.Second {
			return fmt.Errorf("breaker did not open; state %v", res.Breaker().State())
		}
		time.Sleep(2 * time.Millisecond)
	}
	timeToOpen = time.Since(holeStart)
	localPending := len(localSys.MustViewer(requestor))
	localContinued := localPending == 2*perPhase
	depth := fwd.Depth()
	fmt.Printf("phase 2  blackhole:        breaker open after %s; %d notification(s) spooled;"+
		" local viewer has %d/%d (local delivery unaffected)\n",
		timeToOpen.Round(time.Millisecond), depth, localPending, 2*perPhase)

	// Phase 3 — recovery: the healthz probe closes the breaker and the
	// sweep drains the spool.
	faultRT.SetBlackhole(false)
	recovery, err := waitDrain(30 * time.Second)
	if err != nil {
		return err
	}
	remotePC := cmi.NewParticipantClient(remoteSrv.URL, "mirror", nil)
	remoteNotifs, err := remotePC.Notifications()
	if err != nil {
		return err
	}
	delivered, duplicate, failed := fwd.Stats()
	exactlyOnce := len(remoteNotifs) == 2*perPhase
	fmt.Printf("phase 3  recovery:         spool drained in %s; remote queue has %d/%d (exactly once: %v)\n",
		recovery.Round(time.Millisecond), len(remoteNotifs), 2*perPhase, exactlyOnce)
	fmt.Printf("totals: pushes delivered=%d duplicate=%d failed=%d; retries=%d shed=%d\n",
		delivered, duplicate, failed, res.Retries(), res.Shed())
	if !localContinued {
		return fmt.Errorf("local delivery degraded during outage: %d/%d", localPending, 2*perPhase)
	}
	if !exactlyOnce {
		return fmt.Errorf("remote delivery not exactly-once: %d/%d", len(remoteNotifs), 2*perPhase)
	}

	out := struct {
		Benchmark      string    `json:"benchmark"`
		Meta           benchMeta `json:"meta"`
		Notifications  int       `json:"notifications"`
		TimeToOpenMS   float64   `json:"timeToOpenMs"`
		RecoveryMS     float64   `json:"recoveryMs"`
		Retries        uint64    `json:"retries"`
		RetryOverhead  float64   `json:"retryOverheadPerPush"`
		Shed           uint64    `json:"shed"`
		Delivered      uint64    `json:"delivered"`
		Duplicates     uint64    `json:"duplicatesDeduplicated"`
		FailedPushes   uint64    `json:"failedPushes"`
		ExactlyOnce    bool      `json:"exactlyOnce"`
		LocalContinued bool      `json:"localDeliveryContinued"`
	}{
		Benchmark: "federation-resilience",
		Meta: newBenchMeta(fmt.Sprintf("%d awareness detections forwarded across domains; phase 1: 503 burst + dropped responses; "+
			"phase 2: blackholed remote; phase 3: recovery via healthz probe", 2*perPhase)),
		Notifications:  2 * perPhase,
		TimeToOpenMS:   float64(timeToOpen.Microseconds()) / 1000,
		RecoveryMS:     float64(recovery.Microseconds()) / 1000,
		Retries:        res.Retries(),
		RetryOverhead:  float64(res.Retries()) / float64(2*perPhase),
		Shed:           res.Shed(),
		Delivered:      delivered,
		Duplicates:     duplicate,
		FailedPushes:   failed,
		ExactlyOnce:    exactlyOnce,
		LocalContinued: localContinued,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_federation.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_federation.json")
	return nil
}

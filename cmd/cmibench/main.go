// Command cmibench regenerates the paper's figures and reported numbers
// (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	cmibench [-exp all|fig1|fig3|fig4|sec54|sec7|overload|ablation|audit|awareness|federation|recovery|streaming|enact|gate]
//
// With -mutexprofile FILE / -blockprofile FILE, mutex-contention and
// goroutine-blocking profiles of the selected experiments are written
// on exit (profiling rates are enabled only when the flags are set).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/audit"
	"github.com/mcc-cmi/cmi/internal/awareness"
	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/crisis"
	"github.com/mcc-cmi/cmi/internal/delivery"
	"github.com/mcc-cmi/cmi/internal/event"
	"github.com/mcc-cmi/cmi/internal/obs"
	"github.com/mcc-cmi/cmi/internal/vclock"
	"github.com/mcc-cmi/cmi/internal/wfms"
)

// benchSmoke shrinks the awareness experiment to a compile-and-run smoke
// (tiny workload, single rep, no BENCH_*.json rewrite) for `make
// bench-smoke`.
var benchSmoke bool

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmibench: ")
	exp := flag.String("exp", "all", "experiment: all|fig1|fig3|fig4|sec54|sec7|overload|ablation|audit|awareness|federation|recovery|streaming|enact|gate")
	smoke := flag.Bool("smoke", false, "short smoke run: tiny workload, one rep, BENCH_*.json left untouched (awareness experiment)")
	handicap := flag.Float64("gate-handicap", 1, "scale measured numbers by this factor before the gate comparison (negative self-test)")
	mutexProf := flag.String("mutexprofile", "", "write a mutex-contention profile of the selected experiments to this file")
	blockProf := flag.String("blockprofile", "", "write a goroutine-blocking profile of the selected experiments to this file")
	flag.Parse()
	benchSmoke = *smoke
	gateHandicap = *handicap
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(1)
	}
	defer writeProfiles(*mutexProf, *blockProf)

	exps := map[string]func() error{
		"fig1":       fig1,
		"fig3":       fig3,
		"fig4":       fig4,
		"sec54":      sec54,
		"sec7":       sec7,
		"overload":   overload,
		"ablation":   ablation,
		"audit":      auditVsLive,
		"awareness":  awarenessSharded,
		"federation": federationResilience,
		"recovery":   recoveryBench,
		"streaming":  streamingSessions,
		"enact":      enactParallel,
		"gate":       gate,
	}
	if *exp == "all" {
		for _, name := range []string{"fig1", "fig3", "fig4", "sec54", "sec7", "overload", "ablation", "audit", "awareness", "federation", "recovery", "streaming", "enact"} {
			if err := exps[name](); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Println()
		}
		return
	}
	fn, ok := exps[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	if err := fn(); err != nil {
		log.Fatal(err)
	}
}

// writeProfiles dumps the requested runtime profiles; empty paths skip.
func writeProfiles(mutexPath, blockPath string) {
	write := func(profile, path string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Printf("%s profile: %v", profile, err)
			return
		}
		defer f.Close()
		if err := pprof.Lookup(profile).WriteTo(f, 0); err != nil {
			log.Printf("%s profile: %v", profile, err)
			return
		}
		fmt.Printf("wrote %s profile to %s\n", profile, path)
	}
	write("mutex", mutexPath)
	write("block", blockPath)
}

func header(title string) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

// fig1 regenerates Figure 1: tasks during crisis information gathering,
// as a Gantt chart over the virtual-time scenario.
func fig1() error {
	header("Figure 1 — Tasks during crisis information gathering")
	res, err := crisis.RunFigure1()
	if err != nil {
		return err
	}
	total := res.ProcessEnd.Sub(res.ProcessStart)
	fmt.Printf("process span: %s .. %s (%.0fh), %d activity events\n\n",
		res.ProcessStart.Format("Jan 2 15:04"), res.ProcessEnd.Format("Jan 2 15:04"),
		total.Hours(), res.Events)
	const width = 48
	for _, r := range res.Rows {
		startCol := int(float64(r.Start.Sub(res.ProcessStart)) / float64(total) * width)
		endCol := int(float64(r.End.Sub(res.ProcessStart)) / float64(total) * width)
		if endCol <= startCol {
			endCol = startCol + 1
		}
		bar := strings.Repeat(" ", startCol) + strings.Repeat("#", endCol-startCol)
		opt := " "
		if r.Optional {
			opt = "?"
		}
		fmt.Printf("%-22s %s|%-*s|\n", r.Label, opt, width, bar)
	}
	fmt.Printf("\n('?' marks optional activities; three task forces staggered, three lab tests, as in the paper)\n")
	fmt.Printf("awareness notifications: %v\n", res.Notifications)
	return nil
}

// fig3 prints the CMM schema inventory of the deployment model: the
// meta-model instantiated (Figure 2/3's primitives in use).
func fig3() error {
	header("Figure 2/3 — CMM primitives instantiated (schema inventory)")
	d, err := crisis.NewDeployment()
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %-10s %-10s %-10s %-8s\n", "process schema", "activities", "subproc", "deps", "contexts")
	for _, p := range d.Processes {
		subs := len(p.Subprocesses())
		ctxs := 0
		for _, rv := range p.ResourceVars {
			if rv.Schema.Kind == core.ContextResource {
				ctxs++
			}
		}
		fmt.Printf("%-24s %-10d %-10d %-10d %-8d\n", p.Name, len(p.Activities), subs, len(p.Dependencies), ctxs)
	}
	fmt.Printf("\nawareness schemas: %d; context-management scripts: %d\n", len(d.Awareness), len(d.Scripts))
	return nil
}

// fig4 prints the generic activity state schema: states, substate
// relations and the legal transition matrix.
func fig4() error {
	header("Figure 4 — Generic activity state schema")
	s := core.GenericStateSchema()
	fmt.Println("states (substates indented):")
	for _, st := range s.States() {
		if s.Parent(st) == "" {
			fmt.Printf("  %s\n", st)
			for _, sub := range s.States() {
				if s.Parent(sub) == st {
					fmt.Printf("    %s\n", sub)
				}
			}
		}
	}
	leaves := s.Leaves()
	fmt.Printf("\ntransition matrix (rows: from, cols: to):\n%-14s", "")
	for _, to := range leaves {
		fmt.Printf("%-14s", to)
	}
	fmt.Println()
	for _, from := range leaves {
		fmt.Printf("%-14s", from)
		for _, to := range leaves {
			mark := "."
			if s.Legal(from, to) {
				mark = "X"
			}
			fmt.Printf("%-14s", mark)
		}
		fmt.Println()
	}
	fmt.Printf("\ninitial state: %s; %d legal transitions\n", s.Initial(), len(s.Transitions()))
	return nil
}

// sec54 runs the deadline-violation awareness schema end to end and
// reports what was detected and delivered to whom.
func sec54() error {
	header("Section 5.4 — Deadline-violation awareness schema (AS_InfoRequest)")
	clk := vclock.NewVirtual()
	sys, err := cmi.New(cmi.Config{Clock: clk})
	if err != nil {
		return err
	}
	defer sys.Close()
	model, err := crisis.NewModel()
	if err != nil {
		return err
	}
	if err := sys.RegisterProcess(model.TaskForce); err != nil {
		return err
	}
	if err := sys.DefineAwareness(model.Awareness[0]); err != nil {
		return err
	}
	staff, err := crisis.SeedStaff(sys, 3)
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}
	pi, err := sys.StartProcess("TaskForce", staff.Leader)
	if err != nil {
		return err
	}
	t0 := clk.Now()
	co := sys.Coordination()
	var organize string
	for _, ai := range co.ActivitiesOf(pi.ID()) {
		organize = ai.ID
	}
	if err := co.Start(organize, staff.Leader); err != nil {
		return err
	}
	if err := co.Complete(organize, staff.Leader); err != nil {
		return err
	}
	var reqID string
	for _, ai := range co.ActivitiesOf(pi.ID()) {
		if ai.Var == "RequestInfo" {
			reqID = ai.ID
		}
	}
	if err := co.Start(reqID, staff.Leader); err != nil {
		return err
	}
	requestor := staff.Epidemiologists[0]
	if err := sys.SetScopedRole(reqID, "irc", "Requestor", requestor); err != nil {
		return err
	}
	if err := sys.SetContextField(reqID, "irc", "RequestDeadline", t0.Add(48*time.Hour)); err != nil {
		return err
	}
	fmt.Printf("t0+0h   task force %s started; info request %s by %s, request deadline t0+48h\n",
		pi.ID(), reqID, requestor)
	if err := sys.SetContextField(pi.ID(), "tfc", "TaskForceDeadline", t0.Add(72*time.Hour)); err != nil {
		return err
	}
	fmt.Println("t0+0h   task force deadline set to t0+72h (no violation: 72 > 48)")
	clk.Advance(6 * time.Hour)
	if err := sys.SetContextField(pi.ID(), "tfc", "TaskForceDeadline", t0.Add(24*time.Hour)); err != nil {
		return err
	}
	fmt.Println("t0+6h   task force deadline MOVED to t0+24h (violation: 24 <= 48)")
	sys.Drain()
	for _, p := range []string{requestor, staff.Leader, staff.Epidemiologists[1]} {
		notifs := sys.MustViewer(p)
		fmt.Printf("        %-8s received %d notification(s)", p, len(notifs))
		for _, n := range notifs {
			fmt.Printf("  [%s: %s]", n.Schema, n.Description)
		}
		fmt.Println()
	}
	delivered, undeliverable, _ := sys.DeliveryAgent().Stats()
	fmt.Printf("delivery agent: %d delivered, %d undeliverable — exactly the scoped Requestor role\n",
		delivered, undeliverable)
	return nil
}

// sec7 reproduces the Section 7 deployment-scale report.
func sec7() error {
	header("Section 7 — DARPA demonstration scale (paper vs measured)")
	d, err := crisis.NewDeployment()
	if err != nil {
		return err
	}
	inv, err := d.Inventory()
	if err != nil {
		return err
	}
	rows := []struct {
		metric   string
		paper    string
		measured string
	}{
		{"collaboration processes", "9", fmt.Sprint(inv.Processes)},
		{"CMM activities", "> 50", fmt.Sprint(inv.CMMActivities)},
		{"WfMS activities after translation", "a few hundred", fmt.Sprint(inv.WfMSActivities)},
		{"CMM -> WfMS expansion", "(implied several-fold)", fmt.Sprintf("%.1fx", inv.Expansion)},
		{"awareness specifications", "8", fmt.Sprint(inv.AwarenessSpecs)},
		{"basic activity scripts", "30", fmt.Sprint(inv.Scripts)},
	}
	fmt.Printf("%-38s %-22s %s\n", "metric", "paper", "measured")
	for _, r := range rows {
		fmt.Printf("%-38s %-22s %s\n", r.metric, r.paper, r.measured)
	}
	fmt.Println("\nper-process translation:")
	fmt.Printf("%-24s %-14s %-14s %s\n", "process", "CMM acts", "WfMS acts", "factor")
	seen := map[string]bool{}
	for _, p := range d.Processes {
		defs, err := wfms.Translate(p, wfms.TranslateOptions{RepeatWidth: 2})
		if err != nil {
			return err
		}
		for _, def := range defs {
			if seen[def.Name] {
				continue
			}
			seen[def.Name] = true
			var cm *cmi.ProcessSchema
			for _, q := range d.Processes {
				if q.Name == def.Name {
					cm = q
				}
			}
			cmm := 0
			if cm != nil {
				cmm = len(cm.Activities)
			} else if def.Name == "InfoRequest" || def.Name == "TaskForce" {
				continue
			}
			if cmm == 0 {
				continue
			}
			fmt.Printf("%-24s %-14d %-14d %.1fx\n", def.Name, cmm, len(def.Nodes), float64(len(def.Nodes))/float64(cmm))
		}
	}
	return nil
}

// overload runs the E7 information-overload comparison across scales.
func overload() error {
	header("E7 — Information overload: CMI vs content pub/sub vs WfMS monitoring")
	fmt.Printf("%-7s %-9s %-9s | %-21s | %-21s | %-21s\n",
		"forces", "people", "relevant", "CMI del/prec/recall", "PubSub del/prec/recall", "Monitor del/prec/recall")
	for _, forces := range []int{2, 4, 8, 16} {
		cfg := crisis.DefaultOverloadConfig()
		cfg.TaskForces = forces
		res, err := crisis.RunOverload(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-7d %-9d %-9d | %5d  %.2f  %.2f     | %5d  %.2f  %.2f     | %6d  %.2f  %.2f\n",
			forces, res.Participants, res.Relevant,
			res.CMI.Delivered, res.CMI.Precision(), res.CMI.Recall(res.Relevant),
			res.PubSub.Delivered, res.PubSub.Precision(), res.PubSub.Recall(res.Relevant),
			res.Monitor.Delivered, res.Monitor.Precision(), res.Monitor.Recall(res.Relevant))
	}
	fmt.Println("\nshape: CMI delivers exactly the relevant information (precision = recall = 1);")
	fmt.Println("content filtering finds everything but cannot express the deadline comparison")
	fmt.Println("(precision ~0.5); built-in WfMS monitoring floods participants with raw events.")
	return nil
}

// ablation compares awareness detection with process-instance
// replication on vs off (paper Section 5.1.2 / experiment E8).
func ablation() error {
	header("E8 — Ablation: per-process-instance operator replication")
	type outcome struct {
		detections int
		wrong      int
	}
	run := func(disable bool) (outcome, error) {
		clk := vclock.NewVirtual()
		sys, err := cmi.New(cmi.Config{Clock: clk, DisableReplication: disable})
		if err != nil {
			return outcome{}, err
		}
		defer sys.Close()
		model, err := crisis.NewModel()
		if err != nil {
			return outcome{}, err
		}
		if err := sys.RegisterProcess(model.TaskForce); err != nil {
			return outcome{}, err
		}
		if err := sys.DefineAwareness(model.Awareness[0]); err != nil {
			return outcome{}, err
		}
		staff, err := crisis.SeedStaff(sys, 4)
		if err != nil {
			return outcome{}, err
		}
		if err := sys.Start(); err != nil {
			return outcome{}, err
		}
		pi, err := sys.StartProcess("TaskForce", staff.Leader)
		if err != nil {
			return outcome{}, err
		}
		t0 := clk.Now()
		co := sys.Coordination()
		var organize string
		for _, ai := range co.ActivitiesOf(pi.ID()) {
			organize = ai.ID
		}
		if err := co.Start(organize, staff.Leader); err != nil {
			return outcome{}, err
		}
		if err := co.Complete(organize, staff.Leader); err != nil {
			return outcome{}, err
		}
		// Two requests: one with a tight deadline (violated), one far out.
		mkReq := func(requestor string, deadline time.Time, first bool) (string, error) {
			var id string
			if first {
				for _, ai := range co.ActivitiesOf(pi.ID()) {
					if ai.Var == "RequestInfo" && ai.State == cmi.Ready {
						id = ai.ID
					}
				}
			} else {
				info, err := co.Instantiate(pi.ID(), "RequestInfo", staff.Leader)
				if err != nil {
					return "", err
				}
				id = info.ID
			}
			if err := co.Start(id, staff.Leader); err != nil {
				return "", err
			}
			if err := sys.SetScopedRole(id, "irc", "Requestor", requestor); err != nil {
				return "", err
			}
			return id, sys.SetContextField(id, "irc", "RequestDeadline", deadline)
		}
		// First request due at +10h (not violated by a move to +24h);
		// second due at +48h (violated). With replication off, the
		// shared Compare2 state holds the latest request deadline (48h)
		// for every instance, so the move fires for BOTH instances and
		// misattributes a detection to the first request.
		if _, err := mkReq(staff.Epidemiologists[1], t0.Add(10*time.Hour), true); err != nil {
			return outcome{}, err
		}
		victim, err := mkReq(staff.Epidemiologists[0], t0.Add(48*time.Hour), false)
		if err != nil {
			return outcome{}, err
		}
		// Move the deadline to +24h: violates only the second request.
		if err := sys.SetContextField(pi.ID(), "tfc", "TaskForceDeadline", t0.Add(24*time.Hour)); err != nil {
			return outcome{}, err
		}
		sys.Drain()
		var o outcome
		for _, p := range staff.Epidemiologists {
			for _, n := range sys.MustViewer(p) {
				o.detections++
				inst, _ := n.Params["processInstanceId"].(string)
				if inst != victim || p != staff.Epidemiologists[0] {
					o.wrong++
				}
			}
		}
		return o, nil
	}
	on, err := run(false)
	if err != nil {
		return err
	}
	off, err := run(true)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %-14s %s\n", "configuration", "detections", "misattributed")
	fmt.Printf("%-28s %-14d %d\n", "replication ON (paper)", on.detections, on.wrong)
	fmt.Printf("%-28s %-14d %d\n", "replication OFF (ablated)", off.detections, off.wrong)
	fmt.Println("\nwithout per-instance replication the operators mix events across process")
	fmt.Println("instances and produce spurious, misattributed detections (Section 5.1.2).")
	return nil
}

// keep imports tidy when experiments evolve.
var _ = sort.Strings

// auditVsLive contrasts the Section 2 "analyze the process monitoring
// logs" path with CMI's live awareness: the same detection logic runs
// over the audit journal after the fact and finds the same violation,
// but only when the analysis runs — the staleness is unbounded, while
// live awareness delivered at detection time.
func auditVsLive() error {
	header("E11 — After-the-fact log analysis vs live awareness (Section 2)")
	clk := vclock.NewVirtual()
	sys, err := cmi.New(cmi.Config{Clock: clk})
	if err != nil {
		return err
	}
	defer sys.Close()
	journal := filepath.Join(sys.StateDir(), "audit.jsonl")
	rec, err := cmi.NewAuditRecorder(journal)
	if err != nil {
		return err
	}
	defer rec.Close()
	sys.Coordination().Observe(rec)
	sys.Contexts().Observe(rec)

	model, err := crisis.NewModel()
	if err != nil {
		return err
	}
	if err := sys.RegisterProcess(model.TaskForce); err != nil {
		return err
	}
	if err := sys.DefineAwareness(model.Awareness[0]); err != nil {
		return err
	}
	staff, err := crisis.SeedStaff(sys, 2)
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}
	pi, err := sys.StartProcess("TaskForce", staff.Leader)
	if err != nil {
		return err
	}
	t0 := clk.Now()
	co := sys.Coordination()
	var organize string
	for _, ai := range co.ActivitiesOf(pi.ID()) {
		organize = ai.ID
	}
	if err := co.Start(organize, staff.Leader); err != nil {
		return err
	}
	if err := co.Complete(organize, staff.Leader); err != nil {
		return err
	}
	var reqID string
	for _, ai := range co.ActivitiesOf(pi.ID()) {
		if ai.Var == "RequestInfo" {
			reqID = ai.ID
		}
	}
	if err := co.Start(reqID, staff.Leader); err != nil {
		return err
	}
	if err := sys.SetScopedRole(reqID, "irc", "Requestor", staff.Epidemiologists[0]); err != nil {
		return err
	}
	if err := sys.SetContextField(reqID, "irc", "RequestDeadline", t0.Add(48*time.Hour)); err != nil {
		return err
	}
	if err := sys.SetContextField(pi.ID(), "tfc", "TaskForceDeadline", t0.Add(24*time.Hour)); err != nil {
		return err
	}
	liveAt := clk.Now()
	live := len(sys.MustViewer(staff.Epidemiologists[0]))

	// The participants keep working; the log analyst comes in much
	// later and replays the journal through the same detection logic.
	clk.Advance(72 * time.Hour)
	analysisAt := clk.Now()
	offline := 0
	graph, err := awareness.Compile([]*awareness.Schema{model.Awareness[0]}, true,
		event.ConsumerFunc(func(event.Event) { offline++ }))
	if err != nil {
		return err
	}
	replayed, err := audit.Replay(journal, audit.Query{}, event.ConsumerFunc(func(ev event.Event) {
		_, _ = graph.InjectEvent(ev)
	}))
	if err != nil {
		return err
	}
	fmt.Printf("journal: %d primitive events recorded\n", replayed)
	fmt.Printf("%-28s %-14s %s\n", "path", "detections", "information age when seen")
	fmt.Printf("%-28s %-14d %s\n", "CMI live awareness", live, "0h (delivered at detection time)")
	fmt.Printf("%-28s %-14d %.0fh (when the analyst ran the query)\n",
		"log analysis (replayed)", offline, analysisAt.Sub(liveAt).Hours())
	fmt.Println("\nthe monitoring-log path finds the same composite condition, but only when")
	fmt.Println("someone runs the analysis — Section 2's argument for built-in, live awareness.")
	return nil
}

// awarenessSharded measures the sharded awareness detection pipeline on
// the many-instance ingest workload: 512 independent process instances,
// every event producing one detection. Two curves, per shard count:
//
//   - remote delivery: each detection is pushed synchronously to a
//     simulated remote client tool (a fixed 1ms service latency modeling
//     the paper's CORBA notification delivery, Section 6.5) and then
//     durably journaled. Sharding overlaps the delivery waits of
//     distinct process instances — the pipeline property the tentpole
//     builds — so throughput scales with shard count.
//   - local journal: the delivery wait removed; each detection fans out
//     through the delivery store's group-commit journal (fsync per
//     commit group). The shards share one participant queue, so the
//     curve only scales if concurrent appends coalesce their fsyncs —
//     which is exactly what the group-commit writer does: while one
//     commit group's fsync is in flight, the other shards' records
//     accumulate in the next group.
//
// It writes BENCH_awareness.json — events/sec per shard count for both
// curves — to seed the performance trajectory. With -smoke the workload
// shrinks to a single-rep compile-and-run check and the JSON is left
// untouched.
func awarenessSharded() error {
	header("Sharded awareness detection — many-instance ingest throughput")
	type point struct {
		Shards       int     `json:"shards"`
		Events       int     `json:"events"`
		ElapsedMS    float64 `json:"elapsedMs"`
		EventsPerSec float64 `json:"eventsPerSec"`
		Speedup      float64 `json:"speedupVs1"`
	}
	instances := 512
	shardCounts := []int{1, 2, 4, 8}
	remoteReps, localReps := 2, 3
	if benchSmoke {
		instances = 64
		shardCounts = []int{1, 4}
		remoteReps, localReps = 1, 1
	}
	run := func(label string, latency time.Duration, reps int, storeBacked bool) ([]point, error) {
		var (
			points []point
			base   float64
		)
		fmt.Printf("%s:\n", label)
		fmt.Printf("  %-8s %-10s %-12s %-14s %s\n", "shards", "events", "elapsed", "events/sec", "speedup")
		for _, shards := range shardCounts {
			// Best of reps runs: the workload journals durably, so
			// individual runs are I/O-noisy. Each rep gets a fresh state
			// directory — a store-backed rep would otherwise replay the
			// previous rep's queue journal on open.
			var best crisis.IngestResult
			for rep := 0; rep < reps; rep++ {
				dir, err := os.MkdirTemp("", "cmi-ingest-*")
				if err != nil {
					return nil, err
				}
				cfg := crisis.IngestConfig{
					Shards: shards, Instances: instances, EventsPerInstance: 4, Dir: dir,
					DeliveryLatency: latency,
				}
				var st *delivery.Store
				if storeBacked {
					if st, err = delivery.NewStoreWith(dir, delivery.StoreOptions{Sync: true}); err != nil {
						os.RemoveAll(dir)
						return nil, err
					}
					cfg.Store = st
				}
				res, err := crisis.RunIngest(cfg)
				if st != nil {
					st.Close()
				}
				os.RemoveAll(dir)
				if err != nil {
					return nil, err
				}
				if res.EventsPerSec > best.EventsPerSec {
					best = res
				}
			}
			if shards == shardCounts[0] {
				base = best.EventsPerSec
			}
			speedup := best.EventsPerSec / base
			fmt.Printf("  %-8d %-10d %-12s %-14.0f %.2fx\n",
				shards, best.Events, best.Elapsed.Round(time.Millisecond), best.EventsPerSec, speedup)
			points = append(points, point{
				Shards:       shards,
				Events:       best.Events,
				ElapsedMS:    float64(best.Elapsed.Microseconds()) / 1000,
				EventsPerSec: best.EventsPerSec,
				Speedup:      speedup,
			})
		}
		fmt.Println()
		return points, nil
	}
	remote, err := run("remote delivery (1ms simulated push per detection + durable journal)", time.Millisecond, remoteReps, false)
	if err != nil {
		return err
	}
	local, err := run("local journal (delivery store fan-out, fsync per group commit)", 0, localReps, true)
	if err != nil {
		return err
	}
	if benchSmoke {
		fmt.Println("smoke run: BENCH_awareness.json left untouched")
	} else {
		out := struct {
			Benchmark      string    `json:"benchmark"`
			Meta           benchMeta `json:"meta"`
			RemoteDelivery []point   `json:"remoteDelivery"`
			LocalJournal   []point   `json:"localJournal"`
		}{
			Benchmark:      "awareness-sharded-ingest",
			Meta:           newBenchMeta("512 instances x 4 events; remoteDelivery: 1ms simulated remote push + durable journal per detection; localJournal: delivery-store fan-out to one shared queue, fsync per group commit"),
			RemoteDelivery: remote,
			LocalJournal:   local,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_awareness.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_awareness.json")
	}

	// One instrumented store-backed 4-shard run: print the counter series
	// the operations endpoint (/api/metrics) would expose for this
	// workload, demonstrating that instrumentation observes the sharded
	// pipeline — including the delivery store's commit-group counters.
	reg := obs.NewRegistry()
	dir, err := os.MkdirTemp("", "cmi-ingest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := delivery.NewStoreWith(dir, delivery.StoreOptions{Sync: true})
	if err != nil {
		return err
	}
	defer st.Close()
	if _, err := crisis.RunIngest(crisis.IngestConfig{
		Shards: 4, Instances: instances, EventsPerInstance: 4, Dir: dir, Metrics: reg, Store: st,
	}); err != nil {
		return err
	}
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		return err
	}
	fmt.Println("\nmetrics snapshot (instrumented 4-shard run, counters only):")
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "cmi_") && strings.Contains(line, "_total") {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}

// recoverySpec is the workload model for the recovery experiment: a
// tiny pool of long-lived processes whose context takes the bulk of the
// writes, so the journal (history) grows far past the live state.
const recoverySpec = `
contextschema BenchCtx {
    int Tally
}
process Bench {
    context bc BenchCtx
    activity Step role org Crew
}
`

// recoveryBench measures restart time against journal length, with
// snapshot+truncate compaction off (replay the whole history) and on
// (load the snapshot, replay only the tail since the last compaction).
// The paper's crisis scenarios assume the infrastructure survives
// "breakdowns of any kind" (Section 2); this experiment quantifies the
// cost of coming back. It writes BENCH_recovery.json.
func recoveryBench() error {
	header("Crash recovery — restart time vs journal length, snapshot on/off")
	type point struct {
		Ops        int     `json:"ops"`
		WALRecords int     `json:"walRecords"`
		Snapshot   bool    `json:"snapshotLoaded"`
		Replayed   int     `json:"replayed"`
		Skipped    int     `json:"skipped"`
		RecoveryMS float64 `json:"recoveryMs"`
	}
	opCounts := []int{1000, 4000, 16000}
	if benchSmoke {
		opCounts = []int{200}
	}
	const pool = 8 // live processes; history grows, state does not
	run := func(snapEvery int, label string) ([]point, error) {
		fmt.Printf("%s:\n", label)
		fmt.Printf("  %-8s %-12s %-10s %-10s %s\n", "ops", "walRecords", "replayed", "skipped", "recovery")
		var points []point
		for _, ops := range opCounts {
			dir, err := os.MkdirTemp("", "cmi-recovery-*")
			if err != nil {
				return nil, err
			}
			s, err := cmi.New(cmi.Config{StateDir: dir, SnapshotEvery: snapEvery})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			seed := func() error {
				if _, err := s.LoadSpec(recoverySpec); err != nil {
					return err
				}
				if err := s.AddHuman("op", "Operator"); err != nil {
					return err
				}
				if err := s.AssignRole("Crew", "op"); err != nil {
					return err
				}
				if err := s.Start(); err != nil {
					return err
				}
				var ids []string
				for i := 0; i < pool; i++ {
					pi, err := s.StartProcess("Bench", "op")
					if err != nil {
						return err
					}
					ids = append(ids, pi.ID())
				}
				for i := 0; i < ops; i++ {
					if err := s.SetContextField(ids[i%pool], "bc", "Tally", i); err != nil {
						return err
					}
				}
				return nil
			}
			if err := seed(); err != nil {
				s.Close()
				os.RemoveAll(dir)
				return nil, err
			}
			if err := s.Close(); err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			s2, err := cmi.New(cmi.Config{StateDir: dir, SnapshotEvery: snapEvery})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			rec := s2.Recovery()
			s2.Close()
			os.RemoveAll(dir)
			p := point{
				Ops:        ops,
				WALRecords: rec.Replayed + rec.Skipped,
				Snapshot:   rec.SnapshotLoaded,
				Replayed:   rec.Replayed,
				Skipped:    rec.Skipped,
				RecoveryMS: float64(rec.Elapsed.Microseconds()) / 1000,
			}
			points = append(points, p)
			fmt.Printf("  %-8d %-12d %-10d %-10d %.2fms\n",
				p.Ops, p.WALRecords, p.Replayed, p.Skipped, p.RecoveryMS)
		}
		fmt.Println()
		return points, nil
	}
	noSnap, err := run(-1, "compaction off (replay the full history)")
	if err != nil {
		return err
	}
	snapEvery := 500
	withSnap, err := run(snapEvery, fmt.Sprintf("compaction on (snapshot every %d records, replay the tail)", snapEvery))
	if err != nil {
		return err
	}
	if benchSmoke {
		fmt.Println("smoke run: BENCH_recovery.json left untouched")
		return nil
	}
	out := struct {
		Benchmark  string    `json:"benchmark"`
		Meta       benchMeta `json:"meta"`
		NoSnapshot []point   `json:"noSnapshot"`
		Snapshot   []point   `json:"snapshot"`
	}{
		Benchmark:  "enactment-recovery",
		Meta:       newBenchMeta(fmt.Sprintf("%d live processes, N context-field writes; recovery = system.New on the state dir; snapshot arm compacts every %d records", pool, snapEvery)),
		NoSnapshot: noSnap,
		Snapshot:   withSnap,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_recovery.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_recovery.json")
	return nil
}

// Command cmictl is the command-line CMI client: both the Client for
// Participants (worklist, monitor, awareness viewer) and the Client for
// Designers (specification upload, directory management) of Figure 5,
// speaking the federation HTTP/JSON API of a cmid server.
//
// Usage:
//
//	cmictl [-server URL] [-as PARTICIPANT] COMMAND [ARGS]
//
// Designer commands:
//
//	spec FILE                       upload an ADL specification file
//	fmt FILE                        parse and print canonical ADL
//	participant ID NAME [KIND]      register a participant (human|program)
//	role ROLE PARTICIPANT           assign an organizational role
//	start-system                    move the server to run time
//	schemas                         list registered schema names
//
// Participant commands (act as -as):
//
//	start SCHEMA                    instantiate a process schema
//	processes                       list process instances
//	worklist                        show my work items
//	monitor PROCESS                 show a process's activity status
//	instantiate PROCESS VAR         add an instance of a repeatable activity
//	activity OP ACTIVITY            OP: start|complete|terminate|suspend|resume
//	ctx set PROCESS VAR FIELD TYPE VALUE   set a context field
//	ctx get PROCESS VAR FIELD       read a context field
//	notifications                   show my pending awareness notifications
//	ack ID                          acknowledge a notification
//
// Operator commands (offline, no server):
//
//	fsck [-quarantine] STATEDIR     verify a state directory's durable
//	                                artifacts: specs, snapshot, WAL,
//	                                delivery journals, federation spool.
//	                                Exits 1 when damage is found. With
//	                                -quarantine the unreadable suffix of
//	                                a damaged journal is moved to a
//	                                .quarantine sibling and the journal
//	                                truncated to its verified prefix
//	                                (stray .tmp files removed), so the
//	                                next boot loads what is provably
//	                                intact while the evidence survives.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/mcc-cmi/cmi/internal/adl"
	"github.com/mcc-cmi/cmi/internal/core"
	"github.com/mcc-cmi/cmi/internal/federation"
	"github.com/mcc-cmi/cmi/internal/fsck"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmictl: ")

	server := flag.String("server", "http://localhost:8040", "cmid server URL")
	as := flag.String("as", os.Getenv("USER"), "participant to act as")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("missing command; see 'go doc ./cmd/cmictl'")
	}

	designer := federation.NewDesignerClient(*server, nil)
	pc := federation.NewParticipantClient(*server, *as, nil)

	cmd, rest := args[0], args[1:]
	if err := run(designer, pc, cmd, rest); err != nil {
		log.Fatal(err)
	}
}

func run(d *federation.DesignerClient, pc *federation.ParticipantClient, cmd string, args []string) error {
	need := func(n int, usage string) error {
		if len(args) != n {
			return fmt.Errorf("usage: cmictl %s", usage)
		}
		return nil
	}
	switch cmd {
	case "fsck":
		return runFsck(args)

	case "spec":
		if err := need(1, "spec FILE"); err != nil {
			return err
		}
		src, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		resp, err := d.LoadSpec(string(src))
		if err != nil {
			return err
		}
		fmt.Printf("processes: %s\nawareness: %s\n",
			strings.Join(resp.Processes, ", "), strings.Join(resp.Awareness, ", "))
		return nil

	case "fmt":
		if err := need(1, "fmt FILE"); err != nil {
			return err
		}
		src, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		spec, err := adl.Parse(string(src))
		if err != nil {
			return err
		}
		out, err := adl.Format(spec)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil

	case "participant":
		if len(args) < 2 || len(args) > 3 {
			return fmt.Errorf("usage: cmictl participant ID NAME [KIND]")
		}
		kind := "human"
		if len(args) == 3 {
			kind = args[2]
		}
		return d.AddParticipant(args[0], args[1], kind)

	case "role":
		if err := need(2, "role ROLE PARTICIPANT"); err != nil {
			return err
		}
		return d.AssignRole(args[0], args[1])

	case "start-system":
		return d.StartSystem()

	case "schemas":
		names, err := d.Schemas()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil

	case "start":
		if err := need(1, "start SCHEMA"); err != nil {
			return err
		}
		id, err := pc.StartProcess(args[0])
		if err != nil {
			return err
		}
		fmt.Println(id)
		return nil

	case "processes":
		procs, err := pc.Processes()
		if err != nil {
			return err
		}
		for _, p := range procs {
			fmt.Printf("%-8s %-24s %s\n", p.ID, p.Schema, p.State)
		}
		return nil

	case "worklist":
		items, err := pc.Worklist()
		if err != nil {
			return err
		}
		for _, it := range items {
			fmt.Printf("%-8s %-20s %-12s %s/%s\n", it.ActivityID, it.Var, it.State, it.ProcessSchema, it.ProcessID)
		}
		return nil

	case "monitor":
		if err := need(1, "monitor PROCESS"); err != nil {
			return err
		}
		rows, err := pc.Monitor(args[0])
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-8s %-24s %-8s %-20s %-12s %s\n",
				r.ProcessID, r.ProcessSchema, r.ActivityID, r.Var, r.State, r.Assignee)
		}
		return nil

	case "instantiate":
		if err := need(2, "instantiate PROCESS VAR"); err != nil {
			return err
		}
		info, err := pc.Instantiate(args[0], args[1])
		if err != nil {
			return err
		}
		fmt.Println(info.ID)
		return nil

	case "activity":
		if err := need(2, "activity OP ACTIVITY"); err != nil {
			return err
		}
		op, id := args[0], args[1]
		switch op {
		case "start":
			return pc.Start(id)
		case "complete":
			return pc.Complete(id)
		case "terminate":
			return pc.Terminate(id)
		case "suspend":
			return pc.Suspend(id)
		case "resume":
			return pc.Resume(id)
		}
		return fmt.Errorf("unknown activity op %q", op)

	case "ctx":
		if len(args) < 1 {
			return fmt.Errorf("usage: cmictl ctx set|get ...")
		}
		switch args[0] {
		case "set":
			if len(args) != 6 {
				return fmt.Errorf("usage: cmictl ctx set PROCESS VAR FIELD TYPE VALUE")
			}
			v, err := parseValue(args[4], args[5])
			if err != nil {
				return err
			}
			return pc.SetContextField(args[1], args[2], args[3], v)
		case "get":
			if len(args) != 4 {
				return fmt.Errorf("usage: cmictl ctx get PROCESS VAR FIELD")
			}
			v, err := pc.ContextField(args[1], args[2], args[3])
			if err != nil {
				return err
			}
			fmt.Printf("%v\n", v)
			return nil
		}
		return fmt.Errorf("unknown ctx subcommand %q", args[0])

	case "notifications":
		notifs, err := pc.Notifications()
		if err != nil {
			return err
		}
		for _, n := range notifs {
			fmt.Printf("%-4d %-24s %s — %s\n", n.ID, n.Schema, n.Time.Format(time.RFC3339), n.Description)
		}
		return nil

	case "ack":
		if err := need(1, "ack ID"); err != nil {
			return err
		}
		id, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad notification id %q", args[0])
		}
		return pc.Ack(id)
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// runFsck is the offline state-directory verifier: cmictl fsck
// [-quarantine] STATEDIR. It prints one line per durable artifact and
// the WAL/snapshot sequence cross-check, then exits non-zero when the
// directory still needs attention — damage that was not (or cannot be)
// repaired under -quarantine, or stray tmp files left in place.
func runFsck(args []string) error {
	flags := flag.NewFlagSet("fsck", flag.ContinueOnError)
	quarantine := flags.Bool("quarantine", false,
		"repair damaged journals: move the unreadable suffix to a .quarantine sibling, truncate to the verified prefix, remove stray .tmp files")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if flags.NArg() != 1 {
		return fmt.Errorf("usage: cmictl fsck [-quarantine] STATEDIR")
	}
	dir := flags.Arg(0)
	r, err := fsck.Check(dir, fsck.Options{Quarantine: *quarantine})
	if err != nil {
		return err
	}
	unresolved := 0
	for _, f := range r.Files {
		verdict := "ok"
		switch {
		case f.Damaged && f.Quarantined:
			verdict = "REPAIRED"
		case f.Damaged:
			verdict = "DAMAGED"
			unresolved++
		case f.Kind == fsck.KindTmp && !f.Quarantined:
			verdict = "STRAY"
			unresolved++
		case f.Kind == fsck.KindTmp:
			verdict = "REMOVED"
		case f.Torn && f.Quarantined:
			verdict = "TRIMMED"
		case f.Torn:
			verdict = "torn-tail"
		}
		fmt.Printf("%-32s %-17s %-9s %s\n", f.Path, f.Kind, verdict, f.Detail)
	}
	if len(r.Files) == 0 {
		fmt.Printf("%s: no durable artifacts (clean)\n", dir)
	}
	if r.WALSeq > 0 || r.SnapshotSeq > 0 {
		fmt.Printf("sequence high-waters: wal=%d snapshot=%d\n", r.WALSeq, r.SnapshotSeq)
		if r.SnapshotSeq > r.WALSeq && r.WALSeq > 0 {
			fmt.Printf("note: snapshot is ahead of the WAL (normal after compaction truncated superseded records)\n")
		}
	}
	if unresolved > 0 {
		if *quarantine {
			return fmt.Errorf("%d file(s) still need attention (snapshots and specs are never repaired: delete and re-snapshot/re-load)", unresolved)
		}
		return fmt.Errorf("%d file(s) need attention; re-run with -quarantine to repair journals", unresolved)
	}
	fmt.Println("state directory is clean")
	return nil
}

// parseValue converts a CLI value of a declared type into a context
// field value. Role values are comma-separated participant ids.
func parseValue(typ, raw string) (any, error) {
	switch typ {
	case "string":
		return raw, nil
	case "int":
		return strconv.ParseInt(raw, 10, 64)
	case "bool":
		return strconv.ParseBool(raw)
	case "time":
		return time.Parse(time.RFC3339, raw)
	case "role":
		return core.NewRoleValue(strings.Split(raw, ",")...), nil
	case "null":
		return nil, nil
	}
	return nil, fmt.Errorf("unknown field type %q (want string|int|bool|time|role|null)", typ)
}

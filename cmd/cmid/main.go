// Command cmid runs the CMI Enactment System server (Figure 5): the
// CORE, Coordination and Awareness engines behind the federation
// HTTP/JSON API.
//
// Usage:
//
//	cmid [-addr :8040] [-state DIR] [-spec FILE ...] [-start]
//
// Specifications may be preloaded from ADL files with -spec (repeatable);
// otherwise a designer client uploads them via POST /api/spec. With
// -start the system starts immediately after loading the given specs;
// otherwise a designer client starts it via POST /api/system/start.
//
// With -state DIR, the directory persists the delivery queues, the
// enactment write-ahead log and snapshot, and every loaded spec: a bare
// `cmid -state DIR` restart recovers the schemas first, then the full
// enactment state, and logs a recovery summary.
//
// With -forward URL and -forward-participant ID, every detected
// awareness event is also shipped to the federation server at URL for
// that participant, store-and-forward: notifications are journaled to a
// durable spool (-spool, default STATE/spool.journal — binary wire
// frames; a journal written by an earlier version as spool.jsonl keeps
// its name and upgrades in place) and redelivered across remote outages
// under a retry/backoff policy with a per-domain circuit breaker
// (-fed-* flags). Forwarding without -state keeps the spool in the
// temporary state directory, which is removed on shutdown — undelivered
// notifications would be lost, so cmid warns.
//
// With -addr-file FILE, the actual listen address (useful with
// -addr 127.0.0.1:0 for harnesses that need a free port) is written to
// FILE once the listener is bound.
//
// With -enact-stripes N, the enactment engine partitions process
// families across N lock stripes so operations on unrelated families
// enact (and recover) concurrently; 0 picks GOMAXPROCS, 1 restores the
// single global lock. With -pprof ADDR, the net/http/pprof profiling
// endpoints are served on their own listener at ADDR.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof endpoints on the default mux
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/federation"
	"github.com/mcc-cmi/cmi/internal/fs"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

type specList []string

func (s *specList) String() string { return fmt.Sprint(*s) }

func (s *specList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmid: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8040", "listen address")
		addrFile  = flag.String("addr-file", "", "write the bound listen address to this file (for harnesses using -addr with port 0)")
		state     = flag.String("state", "", "state directory for delivery queues, enactment journal and specs; a restart recovers from it (default: temporary)")
		start     = flag.Bool("start", false, "start the system immediately after loading -spec files")
		shards    = flag.Int("shards", 0, "awareness detection shards (0 or 1: synchronous in-line detection)")
		stripes   = flag.Int("enact-stripes", 0, "enactment engine lock stripes partitioning process families; unrelated families enact concurrently (0: GOMAXPROCS, 1: single global lock)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof profiling endpoints on this address (e.g. localhost:6060; empty: disabled)")
		syncJ     = flag.Bool("sync-journal", false, "fsync each delivery-journal and enactment-WAL commit group (durable across machine crashes, not just process crashes)")
		snapEvery = flag.Int("snapshot-every", 0, "enactment journal records between snapshot+truncate compactions (0: default; negative: disable compaction)")
		specs     specList

		streamBuf  = flag.Int("stream-buffer", 0, "per-session streaming live buffer in notifications; a slower subscriber degrades to cursor replay from the journal (0: default 256)")
		streamPing = flag.Duration("stream-ping", 0, "heartbeat interval on idle streaming sessions (0: default 15s)")

		forward     = flag.String("forward", "", "base URL of a remote CMI domain to forward awareness notifications to")
		forwardPart = flag.String("forward-participant", "", "remote participant to deliver forwarded notifications to (required with -forward)")
		spool       = flag.String("spool", "", "store-and-forward spool journal (default: STATE/spool.journal, or a pre-existing STATE/spool.jsonl)")
		fedAttempts = flag.Int("fed-attempts", 0, "max attempts per federation call (default: policy default)")
		fedTimeout  = flag.Duration("fed-timeout", 0, "per-attempt timeout for federation calls (default: policy default)")
		fedBreaker  = flag.Int("fed-breaker", 0, "consecutive failures opening the federation circuit breaker (default: policy default)")
		fedCooldown = flag.Duration("fed-cooldown", 0, "open-breaker cooldown before a half-open trial (default: policy default)")
		fedProbe    = flag.Duration("fed-probe", 0, "interval for /api/healthz probes while the breaker is open (default: policy default)")

		fsFaults     = flag.String("fs-faults", os.Getenv("CMI_FS_FAULTS"), "inject storage faults into every durable log, e.g. sync-fail@3,enospc@65536 (chaos testing; default: $CMI_FS_FAULTS)")
		allowCorrupt = flag.Bool("allow-corrupt", false, "serve (read-only, unhealthy) on a state dir whose enactment WAL is corrupt mid-journal instead of exiting; for inspection alongside cmictl fsck")
	)
	flag.Var(&specs, "spec", "ADL specification file to preload (repeatable)")
	flag.Parse()
	if *forward != "" && *forwardPart == "" {
		return fmt.Errorf("-forward requires -forward-participant")
	}

	if *pprofAddr != "" {
		// The default mux carries the net/http/pprof handlers; serve it on
		// its own listener so profiling never shares the API address.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		log.Printf("pprof endpoints on http://%s/debug/pprof/", *pprofAddr)
	}

	var fsys fs.FS
	if *fsFaults != "" {
		cfg, err := fs.ParseFaults(*fsFaults)
		if err != nil {
			return fmt.Errorf("-fs-faults: %w", err)
		}
		if !cfg.Zero() {
			fsys = fs.NewFault(nil, cfg)
			log.Printf("WARNING: injecting storage faults into every durable log: %s", cfg)
		}
	}

	sys, err := cmi.New(cmi.Config{
		Clock:         vclock.NewSystem(),
		StateDir:      *state,
		Shards:        *shards,
		SyncJournal:   *syncJ,
		SnapshotEvery: *snapEvery,
		StreamBuffer:  *streamBuf,
		EnactStripes:  *stripes,
		FS:            fsys,
	})
	if err != nil {
		return err
	}
	if rec := sys.Recovery(); rec.SnapshotLoaded || rec.Replayed > 0 || rec.TornTail || rec.Failed > 0 {
		log.Printf("recovered enactment state: snapshot=%v, %d record(s) replayed, %d skipped, %d failed, torn tail=%v (%v)",
			rec.SnapshotLoaded, rec.Replayed, rec.Skipped, rec.Failed, rec.TornTail, rec.Elapsed)
	}
	if rec := sys.Recovery(); rec.Corrupt {
		if !*allowCorrupt {
			dir := sys.StateDir()
			sys.Close()
			return fmt.Errorf("enactment WAL is corrupt mid-journal at offset %d; refusing to serve (run `cmictl fsck %s`, or restart with -allow-corrupt to inspect read-only)",
				rec.CorruptOffset, dir)
		}
		log.Printf("WARNING: enactment WAL is corrupt mid-journal at offset %d; serving the recovered prefix read-only (-allow-corrupt); run `cmictl fsck %s`",
			rec.CorruptOffset, sys.StateDir())
	}
	if *syncJ && *state == "" {
		log.Printf("WARNING: -sync-journal with a temporary state directory: the journals are fsynced but the directory is removed on shutdown, so nothing survives a restart; pass -state DIR to make durability meaningful")
	}
	if *forward != "" && *state == "" && *spool == "" {
		log.Printf("WARNING: -forward with a temporary state directory: the store-and-forward spool lives under it and is removed on shutdown, so undelivered notifications are lost; pass -state DIR or -spool FILE to make the spool durable")
	}

	for _, path := range specs {
		src, err := os.ReadFile(path)
		if err != nil {
			sys.Close()
			return err
		}
		spec, err := sys.LoadSpec(string(src))
		if err != nil {
			sys.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		log.Printf("loaded %s: %d process schema(s), %d awareness schema(s)",
			path, len(spec.Processes), len(spec.Awareness))
	}
	if *forward != "" {
		policy := federation.DefaultPolicy()
		if *fedAttempts > 0 {
			policy.MaxAttempts = *fedAttempts
		}
		if *fedTimeout > 0 {
			policy.AttemptTimeout = *fedTimeout
		}
		if *fedBreaker > 0 {
			policy.BreakerThreshold = *fedBreaker
		}
		if *fedCooldown > 0 {
			policy.BreakerCooldown = *fedCooldown
		}
		if *fedProbe > 0 {
			policy.ProbeInterval = *fedProbe
		}
		res := federation.NewResilience(*forward, policy, nil, sys.Metrics())
		remote := federation.NewRemoteClient(*forward, nil).WithResilience(res)
		spoolPath := *spool
		if spoolPath == "" {
			spoolPath = filepath.Join(sys.StateDir(), "spool.journal")
			// A spool journaled by an earlier version keeps its name (and
			// upgrades to binary frames in place on the first compaction).
			legacy := filepath.Join(sys.StateDir(), "spool.jsonl")
			if _, err := os.Stat(spoolPath); os.IsNotExist(err) {
				if _, err := os.Stat(legacy); err == nil {
					spoolPath = legacy
				}
			}
		}
		fwd, err := federation.NewForwarder(federation.ForwarderConfig{
			Client:    remote,
			SpoolPath: spoolPath,
			Metrics:   sys.Metrics(),
			FS:        fsys,
		})
		if err != nil {
			sys.Close()
			return err
		}
		sys.OnDetection(fwd.Hook(*forwardPart))
		sys.AddCloser(func() error {
			defer res.Close()
			return fwd.Close()
		})
		log.Printf("forwarding awareness notifications to %s for %s (spool: %s)",
			*forward, *forwardPart, spoolPath)
	}

	srv := federation.NewServer(sys)
	srv.SetStreamPing(*streamPing)
	if *start {
		if err := sys.Start(); err != nil {
			sys.Close()
			return err
		}
		srv.MarkStarted()
		log.Printf("system started")
	}

	// Serve until SIGINT/SIGTERM, then shut down in order: stop accepting
	// connections, drain in-flight requests, then drain the engines and
	// flush the delivery queues (Close). An owned temporary state
	// directory is removed by Close, so a signalled daemon leaves nothing
	// behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Streaming sessions never return on their own; end them the moment
	// a shutdown begins so the connection drain below can finish. Their
	// clients resume by cursor against the next incarnation.
	httpSrv.RegisterOnShutdown(sys.Stream().Close)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		sys.Close()
		return err
	}
	log.Printf("enactment system listening on %s (state: %s)", ln.Addr(), sys.StateDir())
	if *addrFile != "" {
		// Atomic replace (tmp + fsync + rename + parent-dir fsync) so a
		// watcher polling the file never reads a torn address and the
		// rename survives a machine crash. The real filesystem on
		// purpose: an injected fault here would kill the harness's
		// ability to find the port before the fault under test fires.
		if err := fs.ReplaceFile(nil, *addrFile, []byte(ln.Addr().String()), true); err != nil {
			ln.Close()
			sys.Close()
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		sys.Close()
		return err
	case <-ctx.Done():
	}
	stop() // restore default handling so a second signal kills us
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		sys.Close()
		return err
	}
	if err := sys.Close(); err != nil {
		return err
	}
	log.Printf("shutdown complete")
	return nil
}

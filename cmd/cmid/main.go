// Command cmid runs the CMI Enactment System server (Figure 5): the
// CORE, Coordination and Awareness engines behind the federation
// HTTP/JSON API.
//
// Usage:
//
//	cmid [-addr :8040] [-state DIR] [-spec FILE ...] [-start]
//
// Specifications may be preloaded from ADL files with -spec (repeatable);
// otherwise a designer client uploads them via POST /api/spec. With
// -start the system starts immediately after loading the given specs;
// otherwise a designer client starts it via POST /api/system/start.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	cmi "github.com/mcc-cmi/cmi"
	"github.com/mcc-cmi/cmi/internal/federation"
	"github.com/mcc-cmi/cmi/internal/vclock"
)

type specList []string

func (s *specList) String() string { return fmt.Sprint(*s) }

func (s *specList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmid: ")

	var (
		addr   = flag.String("addr", ":8040", "listen address")
		state  = flag.String("state", "", "state directory for persistent delivery queues (default: temporary)")
		start  = flag.Bool("start", false, "start the system immediately after loading -spec files")
		shards = flag.Int("shards", 0, "awareness detection shards (0 or 1: synchronous in-line detection)")
		specs  specList
	)
	flag.Var(&specs, "spec", "ADL specification file to preload (repeatable)")
	flag.Parse()

	sys, err := cmi.New(cmi.Config{
		Clock:    vclock.NewSystem(),
		StateDir: *state,
		Shards:   *shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	for _, path := range specs {
		src, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := sys.LoadSpec(string(src))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		log.Printf("loaded %s: %d process schema(s), %d awareness schema(s)",
			path, len(spec.Processes), len(spec.Awareness))
	}
	srv := federation.NewServer(sys)
	if *start {
		if err := sys.Start(); err != nil {
			log.Fatal(err)
		}
		srv.MarkStarted()
		log.Printf("system started")
	}

	log.Printf("enactment system listening on %s (state: %s)", *addr, sys.StateDir())
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}

package cmi

import (
	"os"
	"testing"
	"time"

	"github.com/mcc-cmi/cmi/internal/vclock"
)

const facadeSpec = `
contextschema TaskForceContext {
    role TaskForceMembers
    time TaskForceDeadline
}
contextschema InfoRequestContext {
    role Requestor
    time RequestDeadline
}
process InfoRequest {
    context irc InfoRequestContext
    input context tfc TaskForceContext
    activity Gather role org Epidemiologist
    activity Deliver role org Epidemiologist
    seq Gather -> Deliver
}
process TaskForce {
    context tfc TaskForceContext
    activity Organize role org CrisisLeader
    subprocess RequestInfo InfoRequest optional repeatable bind (tfc = tfc)
    activity Assess role org Epidemiologist
    seq Organize -> RequestInfo
    seq Organize -> Assess
}
awareness DeadlineViolation on InfoRequest {
    op1 = context TaskForceContext.TaskForceDeadline
    op2 = context InfoRequestContext.RequestDeadline
    root = compare2 "<=" (op1, op2)
    deliver scoped InfoRequestContext.Requestor
    assign identity
    describe "Task force deadline moved earlier than the request deadline"
}
`

func newTestSystem(t *testing.T, dir string) *System {
	t.Helper()
	sys, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sys.MustLoadSpec(facadeSpec)
	for _, p := range [][2]string{{"leader", "The Leader"}, {"dr.reed", "Dr Reed"}} {
		if err := sys.AddHuman(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.AssignRole("CrisisLeader", "leader"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AssignRole("Epidemiologist", "dr.reed"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func runActivity(t *testing.T, sys *System, processID, varName, user string) {
	t.Helper()
	var id string
	for _, ai := range sys.Coordination().ActivitiesOf(processID) {
		if ai.Var == varName {
			id = ai.ID
		}
	}
	if id == "" {
		t.Fatalf("no instance of %q", varName)
	}
	if err := sys.Coordination().Start(id, user); err != nil {
		t.Fatal(err)
	}
	if err := sys.Coordination().Complete(id, user); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeEndToEnd drives the Section 5.4 scenario through the public
// API only: ADL spec in, notification in the requestor's viewer out.
func TestFacadeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	sys := newTestSystem(t, dir)

	pi, err := sys.StartProcess("TaskForce", "leader")
	if err != nil {
		t.Fatal(err)
	}
	clk := sys.Clock().(*vclock.Virtual)
	t0 := clk.Now()
	if err := sys.SetContextField(pi.ID(), "tfc", "TaskForceDeadline", t0.Add(72*time.Hour)); err != nil {
		t.Fatal(err)
	}
	// The leader's worklist shows Organize.
	wl := sys.Worklist("leader")
	if len(wl) != 1 || wl[0].Var != "Organize" {
		t.Fatalf("worklist = %v", wl)
	}
	runActivity(t, sys, pi.ID(), "Organize", "leader")

	var reqID string
	for _, ai := range sys.Coordination().ActivitiesOf(pi.ID()) {
		if ai.Var == "RequestInfo" {
			reqID = ai.ID
		}
	}
	if err := sys.Coordination().Start(reqID, "leader"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScopedRole(reqID, "irc", "Requestor", "dr.reed"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContextField(reqID, "irc", "RequestDeadline", t0.Add(48*time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Violation: move the task force deadline to +24h.
	clk.Advance(time.Hour)
	if err := sys.SetContextField(pi.ID(), "tfc", "TaskForceDeadline", t0.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	sys.Drain()

	notifs := sys.MustViewer("dr.reed")
	if len(notifs) != 1 {
		t.Fatalf("notifications = %v", notifs)
	}
	n := notifs[0]
	if n.Schema != "DeadlineViolation" {
		t.Fatalf("schema = %q", n.Schema)
	}
	if n.Description == "" {
		t.Fatal("description empty")
	}
	// Nobody else was notified.
	if other := sys.MustViewer("leader"); len(other) != 0 {
		t.Fatalf("leader notified: %v", other)
	}
	delivered, undeliverable, _ := sys.DeliveryAgent().Stats()
	if delivered != 1 || undeliverable != 0 {
		t.Fatalf("agent stats = %d, %d", delivered, undeliverable)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same state dir: the notification is still pending.
	sys2, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	pending, err := sys2.Viewer("dr.reed").Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Schema != "DeadlineViolation" {
		t.Fatalf("pending after restart = %v", pending)
	}
	if err := sys2.Viewer("dr.reed").Ack(pending[0].ID); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLifecycle(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	stateDir := sys.StateDir()
	if stateDir == "" {
		t.Fatal("no state dir")
	}
	// No awareness schemas: Start still succeeds (coordination only).
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// The system-created state dir is removed by Close.
	if _, err := os.Stat(stateDir); !os.IsNotExist(err) {
		t.Fatalf("state dir survived close: %v", err)
	}
}

func TestFacadeErrors(t *testing.T) {
	sys, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.LoadSpec("process {"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := sys.StartProcess("Nope", "x"); err == nil {
		t.Fatal("unknown process started")
	}
	if err := sys.SetContextField("ghost", "c", "f", 1); err == nil {
		t.Fatal("unknown process context set")
	}
	if _, ok := sys.ContextField("ghost", "c", "f"); ok {
		t.Fatal("unknown process context read")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLoadSpec did not panic")
		}
	}()
	sys.MustLoadSpec("bogus {")
}

func TestFacadeProgrammaticSchemas(t *testing.T) {
	sys, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	// Build a process and awareness schema with the re-exported types.
	ctx := &ResourceSchema{
		Name: "Ctx", Kind: ContextResource,
		Fields: []FieldDef{{Name: "Watchers", Type: FieldRole}, {Name: "N", Type: FieldInt}},
	}
	p := &ProcessSchema{
		Name: "Prog",
		ResourceVars: []ResourceVariable{
			{Name: "c", Usage: UsageLocal, Schema: ctx},
		},
		Activities: []ActivityVariable{
			{Name: "Work", Schema: &BasicActivitySchema{Name: "Work", PerformerRole: OrgRole("Worker")}},
		},
	}
	if err := sys.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	aw := &AwarenessSchema{
		Name:    "Counted",
		Process: p,
		Description: &Compare1Node{Op: ">=", Operand: 2, Input: &CountNode{
			Input: &ContextSource{Context: "Ctx", Field: "N"},
		}},
		DeliveryRole: ScopedRole("Ctx", "Watchers"),
		Text:         "N changed at least twice",
	}
	if err := sys.DefineAwareness(aw); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHuman("w", "W"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AssignRole("Worker", "w"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	pi, err := sys.StartProcess("Prog", "w")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScopedRole(pi.ID(), "c", "Watchers", "w"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContextField(pi.ID(), "c", "N", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContextField(pi.ID(), "c", "N", 2); err != nil {
		t.Fatal(err)
	}
	sys.Drain()
	notifs := sys.MustViewer("w")
	if len(notifs) != 1 || notifs[0].Schema != "Counted" {
		t.Fatalf("notifications = %v", notifs)
	}
	if v, ok := sys.ContextField(pi.ID(), "c", "N"); !ok || v != 2 {
		t.Fatalf("context field = %v, %v", v, ok)
	}
}

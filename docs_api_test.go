package cmi

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// routePattern matches the route literals registered on the federation
// mux: mux.HandleFunc("METHOD /path", ...) and mux.Handle("METHOD
// /path", ...).
var routePattern = regexp.MustCompile(`mux\.Handle(?:Func)?\("([A-Z]+ /[^"]*)"`)

// muxRoutes extracts every route literal from the federation server
// source.
func muxRoutes(t *testing.T) []string {
	t.Helper()
	src, err := os.ReadFile("internal/federation/server.go")
	if err != nil {
		t.Fatalf("internal/federation/server.go: %v", err)
	}
	var routes []string
	for _, m := range routePattern.FindAllStringSubmatch(string(src), -1) {
		routes = append(routes, m[1])
	}
	if len(routes) == 0 {
		t.Fatal("no mux route literals found in internal/federation/server.go; the guard's scan is broken")
	}
	return routes
}

// undocumentedRoutes returns the routes whose literal pattern does not
// appear in the doc text. Factored out so the guard can be self-tested
// against a doc with a known hole.
func undocumentedRoutes(routes []string, doc string) []string {
	var missing []string
	for _, r := range routes {
		// The doc renders patterns as "`METHOD /path`"; substring match
		// keeps the guard robust to surrounding prose.
		if !strings.Contains(doc, r) {
			missing = append(missing, r)
		}
	}
	return missing
}

// TestAPIDocumented is the API-doc drift gate wired into `make check`:
// every route registered on the federation mux must appear in
// docs/API.md. Adding an endpoint without reference documentation
// fails the build.
func TestAPIDocumented(t *testing.T) {
	docBytes, err := os.ReadFile("docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md: %v", err)
	}
	if missing := undocumentedRoutes(muxRoutes(t), string(docBytes)); len(missing) > 0 {
		t.Errorf("routes registered in internal/federation/server.go but missing from docs/API.md:\n  %s",
			strings.Join(missing, "\n  "))
	}

	// Negative self-test: the guard must actually fire when a route is
	// absent. Strip one known route from the doc and require a report.
	t.Run("detects missing route", func(t *testing.T) {
		routes := muxRoutes(t)
		victim := routes[0]
		mutilated := strings.ReplaceAll(string(docBytes), victim, "")
		missing := undocumentedRoutes(routes, mutilated)
		found := false
		for _, m := range missing {
			if m == victim {
				found = true
			}
		}
		if !found {
			t.Errorf("guard failed to flag route %q removed from the doc", victim)
		}
	})
}

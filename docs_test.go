package cmi

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMetricsDocumented is the docs-consistency guard wired into `make
// check`: every `cmi_*` metric name registered anywhere in non-test Go
// code must be documented in docs/OPERATIONS.md's metrics catalog. A
// new series without an operator-facing description fails the build.
func TestMetricsDocumented(t *testing.T) {
	docBytes, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md: %v", err)
	}
	doc := string(docBytes)

	metricRe := regexp.MustCompile(`"(cmi_[a-z0-9_]+)"`)
	found := map[string][]string{}
	err = filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricRe.FindAllStringSubmatch(string(src), -1) {
			found[m[1]] = append(found[m[1]], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("no cmi_* metric literals found in Go sources; the guard's scan is broken")
	}
	var missing []string
	for name, files := range found {
		if !strings.Contains(doc, name) {
			missing = append(missing, name+" (registered in "+files[0]+")")
		}
	}
	if len(missing) > 0 {
		t.Errorf("metrics registered in code but missing from docs/OPERATIONS.md:\n  %s",
			strings.Join(missing, "\n  "))
	}
}
